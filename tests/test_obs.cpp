// mcr::obs — tracing sinks, the TraceRecorder + Chrome exporter, and
// the metrics registry. The contracts under test:
//   * Span/SinkScope are RAII and thread-local; the null-sink path is a
//     strict no-op and the sink is restored on scope exit.
//   * TraceRecorder logs properly nested begin/end pairs per thread and
//     its Chrome export is syntactically valid JSON with the right
//     event phases.
//   * Solver-work metrics recorded by the parallel driver are identical
//     for every thread count (the deterministic-merge contract extended
//     to observability).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/driver.h"
#include "core/registry.h"
#include "gen/circuit.h"
#include "gen/structured.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace_recorder.h"
#include "obs/windowed.h"
#include "support/prng.h"
#include "support/thread_pool.h"

namespace mcr {
namespace {

using obs::EventKind;
using obs::TraceRecorder;

// --- Minimal JSON syntax checker --------------------------------------
// Validates the subset the exporters emit (objects, arrays, strings
// with escapes, numbers, literals) so exporter tests don't depend on an
// external parser. Returns true iff the whole input is one JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// --- Sink installation and the null path ------------------------------

TEST(ObsSink, DefaultIsNullAndEmitIsNoOp) {
  EXPECT_EQ(obs::current_sink(), nullptr);
  obs::emit(EventKind::kIteration, "nobody.listening", 42);  // must not crash
  const obs::Span span(EventKind::kSolve, "untraced");
  EXPECT_EQ(obs::current_sink(), nullptr);
}

TEST(ObsSink, SinkScopeInstallsAndRestores) {
  TraceRecorder rec;
  {
    const obs::SinkScope scope(&rec);
    EXPECT_EQ(obs::current_sink(), &rec);
    {
      const obs::SinkScope inner(nullptr);  // explicit disable nests too
      EXPECT_EQ(obs::current_sink(), nullptr);
    }
    EXPECT_EQ(obs::current_sink(), &rec);
    obs::emit(EventKind::kIteration, "scoped", 1);
  }
  EXPECT_EQ(obs::current_sink(), nullptr);
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].name, "scoped");
}

TEST(ObsSink, SinkIsThreadLocal) {
  TraceRecorder rec;
  const obs::SinkScope scope(&rec);
  obs::TraceSink* seen_on_other_thread = &rec;  // must be overwritten
  std::thread t([&] { seen_on_other_thread = obs::current_sink(); });
  t.join();
  EXPECT_EQ(seen_on_other_thread, nullptr);
  EXPECT_EQ(obs::current_sink(), &rec);
}

// --- TraceRecorder: ordering, nesting, export -------------------------

TEST(TraceRecorder, RecordsNestedSpansInOrder) {
  TraceRecorder rec;
  {
    const obs::SinkScope scope(&rec);
    const obs::Span outer(EventKind::kSolve, "solve:test");
    {
      const obs::Span inner(EventKind::kSccDecompose, "scc_decompose");
      obs::emit(EventKind::kIteration, "iter", 3);
    }
  }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].phase, TraceRecorder::Phase::kBegin);
  EXPECT_EQ(events[0].kind, EventKind::kSolve);
  EXPECT_EQ(events[1].phase, TraceRecorder::Phase::kBegin);
  EXPECT_EQ(events[1].kind, EventKind::kSccDecompose);
  EXPECT_EQ(events[2].phase, TraceRecorder::Phase::kInstant);
  EXPECT_EQ(events[2].value, 3);
  EXPECT_EQ(events[3].phase, TraceRecorder::Phase::kEnd);
  EXPECT_EQ(events[3].kind, EventKind::kSccDecompose);
  EXPECT_EQ(events[4].phase, TraceRecorder::Phase::kEnd);
  EXPECT_EQ(events[4].kind, EventKind::kSolve);
  // Timestamps are monotone within the single emitting thread.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].micros, events[i - 1].micros);
    EXPECT_EQ(events[i].tid, 0u);
  }
  EXPECT_EQ(rec.num_threads(), 1u);
}

TEST(TraceRecorder, ChromeExportIsValidJsonWithBalancedPhases) {
  TraceRecorder rec;
  {
    const obs::SinkScope scope(&rec);
    const obs::Span outer(EventKind::kSolve, "solve:howard");
    const obs::Span comp(EventKind::kComponent, "component#0 n=5 m=7");
    obs::emit(EventKind::kPolicyImprove, "howard.policy_improve", 2);
  }
  const std::string json = rec.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Two "B", two "E", one "i" — counted crudely but unambiguously since
  // ph values are single-character strings.
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t p = json.find(needle); p != std::string::npos;
         p = json.find(needle, p + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), 2u);
  EXPECT_EQ(count("\"ph\":\"E\""), 2u);
  EXPECT_EQ(count("\"ph\":\"i\""), 1u);
}

TEST(TraceRecorder, ExportEscapesHostileNames) {
  TraceRecorder rec;
  {
    const obs::SinkScope scope(&rec);
    obs::emit(EventKind::kIteration, "quote\"back\\slash\nnew\ttab\x01ctl", 1);
  }
  const std::string json = rec.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(TraceRecorder, AssignsDenseThreadIdsAcrossWorkers) {
  TraceRecorder rec;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      const obs::SinkScope scope(&rec);
      const obs::Span span(EventKind::kComponent, "component");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.num_threads(), static_cast<std::size_t>(kThreads));
  for (const auto& e : rec.events()) {
    EXPECT_LT(e.tid, static_cast<std::uint32_t>(kThreads));
  }
}

TEST(TraceRecorder, SpanTotalsSumNestedAndConcurrentSpans) {
  TraceRecorder rec;
  {
    const obs::SinkScope scope(&rec);
    const obs::Span outer(EventKind::kSolve, "solve:x");
    const obs::Span c1(EventKind::kComponent, "component#0");
  }
  const auto totals = rec.span_totals();
  ASSERT_TRUE(totals.count("solve"));
  ASSERT_TRUE(totals.count("component"));
  // The component span is nested inside the solve span, so its total
  // cannot exceed the solve total (single thread).
  EXPECT_LE(totals.at("component"), totals.at("solve"));
  EXPECT_GE(totals.at("component"), 0.0);
}

// --- Traced solves through the driver ---------------------------------

Graph multi_scc_graph() {
  gen::CircuitConfig cc;
  cc.registers = 120;
  cc.module_size = 8;
  cc.seed = 7;
  return gen::circuit(cc);
}

TEST(TracedSolve, DriverEmitsBalancedPhaseSpans) {
  const Graph g = multi_scc_graph();
  TraceRecorder rec;
  const auto solver = SolverRegistry::instance().create("howard");
  const SolveOptions options{.num_threads = 2, .trace = &rec};
  const CycleResult r = minimum_cycle_mean(g, *solver, options);
  ASSERT_TRUE(r.has_cycle);

  // Begin/end balance per kind, and per-thread stack discipline.
  std::map<std::string, int> open;
  std::map<std::uint32_t, std::vector<EventKind>> stacks;
  for (const auto& e : rec.events()) {
    if (e.phase == TraceRecorder::Phase::kBegin) {
      ++open[obs::to_string(e.kind)];
      stacks[e.tid].push_back(e.kind);
    } else if (e.phase == TraceRecorder::Phase::kEnd) {
      --open[obs::to_string(e.kind)];
      ASSERT_FALSE(stacks[e.tid].empty());
      EXPECT_EQ(stacks[e.tid].back(), e.kind);
      stacks[e.tid].pop_back();
    }
  }
  for (const auto& [kind, n] : open) EXPECT_EQ(n, 0) << kind;
  EXPECT_GE(open.size(), 3u);  // solve, scc_decompose, component at least
  EXPECT_TRUE(open.count("solve"));
  EXPECT_TRUE(open.count("scc_decompose"));
  EXPECT_TRUE(open.count("component"));
  EXPECT_TRUE(open.count("merge"));
  EXPECT_TRUE(JsonChecker(rec.chrome_trace_json()).valid());
}

TEST(TracedSolve, UntracedSolveMatchesTracedSolve) {
  const Graph g = multi_scc_graph();
  const auto solver = SolverRegistry::instance().create("howard");
  TraceRecorder rec;
  const CycleResult plain = minimum_cycle_mean(g, *solver);
  const CycleResult traced =
      minimum_cycle_mean(g, *solver, SolveOptions{.num_threads = 1, .trace = &rec});
  EXPECT_EQ(plain.value, traced.value);
  EXPECT_EQ(plain.cycle, traced.cycle);
  EXPECT_EQ(plain.counters, traced.counters);
  EXPECT_FALSE(rec.events().empty());
}

// --- TeeSink fan-out --------------------------------------------------

TEST(TeeSink, ForwardsToBothBranches) {
  TraceRecorder a;
  TraceRecorder b;
  obs::TeeSink tee(&a, &b);
  ASSERT_EQ(tee.effective(), &tee);
  {
    const obs::SinkScope scope(tee.effective());
    const obs::Span span(EventKind::kRequest, "PING");
    obs::emit(EventKind::kIteration, "iter", 7);
  }
  ASSERT_EQ(a.events().size(), 3u);
  ASSERT_EQ(b.events().size(), 3u);
  EXPECT_EQ(a.events()[1].name, "iter");
  EXPECT_EQ(b.events()[1].value, 7);
}

TEST(TeeSink, EffectiveCollapsesNullBranches) {
  TraceRecorder rec;
  obs::TeeSink both_null(nullptr, nullptr);
  EXPECT_EQ(both_null.effective(), nullptr);
  obs::TeeSink left(&rec, nullptr);
  EXPECT_EQ(left.effective(), &rec);
  obs::TeeSink right(nullptr, &rec);
  EXPECT_EQ(right.effective(), &rec);
}

// --- FlightRecorder: retention, pinning, sampling, export -------------

obs::FlightRecorder::Options tiny_flight(std::size_t capacity,
                                         std::size_t pinned,
                                         double slow_ms) {
  obs::FlightRecorder::Options o;
  o.capacity = capacity;
  o.pinned_capacity = pinned;
  o.slow_ms = slow_ms;
  o.sample_rate = 0.0;
  return o;
}

TEST(FlightRecorder, RingEvictsOldestDeterministically) {
  obs::FlightRecorder fr(tiny_flight(4, 4, -1.0));  // slow-pinning off
  for (int i = 0; i < 10; ++i) {
    auto t = fr.begin("id" + std::to_string(i), "SOLVE", "");
    fr.finish(t, "", 1.0);
  }
  EXPECT_EQ(fr.ring_size(), 4u);
  EXPECT_EQ(fr.pinned_size(), 0u);
  EXPECT_EQ(fr.finished_total(), 10u);
  EXPECT_EQ(fr.evicted_total(), 6u);
  // Exactly the newest four survive, oldest first.
  const auto kept = fr.select({});
  ASSERT_EQ(kept.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(kept[static_cast<std::size_t>(i)]->trace_id(),
              "id" + std::to_string(6 + i));
  }
}

TEST(FlightRecorder, ErroredTracesSurviveRingEviction) {
  obs::FlightRecorder fr(tiny_flight(2, 4, -1.0));
  auto bad = fr.begin("failing", "SOLVE", "");
  fr.finish(bad, "INTERNAL", 0.5);
  EXPECT_TRUE(bad->pinned());
  for (int i = 0; i < 8; ++i) {
    auto t = fr.begin("ok" + std::to_string(i), "SOLVE", "");
    fr.finish(t, "", 0.1);
  }
  // Long gone from the two-slot ring, still reachable via the pin.
  obs::FlightRecorder::Filter by_id;
  by_id.trace_id = "failing";
  const auto found = fr.select(by_id);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->error_code(), "INTERNAL");
  EXPECT_TRUE(found[0]->pinned());
}

TEST(FlightRecorder, SlowThresholdControlsPinning) {
  obs::FlightRecorder fr(tiny_flight(8, 8, 100.0));
  auto fast = fr.begin("fast", "SOLVE", "");
  fr.finish(fast, "", 50.0);
  auto slow = fr.begin("slow", "SOLVE", "");
  fr.finish(slow, "", 150.0);
  EXPECT_FALSE(fast->pinned());
  EXPECT_TRUE(slow->pinned());
  EXPECT_EQ(fr.pinned_size(), 1u);

  // slow_ms == 0 pins everything; the pinned set still keeps its bound.
  obs::FlightRecorder all(tiny_flight(8, 2, 0.0));
  for (int i = 0; i < 6; ++i) {
    std::string id = "t";
    id += std::to_string(i);
    auto t = all.begin(std::move(id), "PING", "");
    all.finish(t, "", 0.0);
  }
  EXPECT_EQ(all.pinned_size(), 2u);
  EXPECT_EQ(all.ring_size(), 6u);
}

TEST(FlightRecorder, PinnedTraceAppearsOnceInSelect) {
  obs::FlightRecorder fr(tiny_flight(4, 4, 0.0));  // everything pinned
  auto t = fr.begin("dup", "SOLVE", "");
  fr.finish(t, "", 1.0);
  EXPECT_EQ(fr.ring_size(), 1u);
  EXPECT_EQ(fr.pinned_size(), 1u);
  EXPECT_EQ(fr.select({}).size(), 1u);  // ring + pin deduplicated
}

TEST(FlightRecorder, SelectFiltersByVerbDurationAndLimit) {
  obs::FlightRecorder fr(tiny_flight(16, 4, -1.0));
  for (int i = 0; i < 6; ++i) {
    std::string id = "s";
    id += std::to_string(i);
    auto t = fr.begin(std::move(id), i % 2 ? "SOLVE" : "PING", "");
    fr.finish(t, "", i % 2 ? 200.0 : 1.0);
  }
  obs::FlightRecorder::Filter by_verb;
  by_verb.verb = "SOLVE";
  EXPECT_EQ(fr.select(by_verb).size(), 3u);
  obs::FlightRecorder::Filter by_ms;
  by_ms.min_ms = 100.0;
  EXPECT_EQ(fr.select(by_ms).size(), 3u);
  obs::FlightRecorder::Filter capped;
  capped.limit = 2;
  const auto newest = fr.select(capped);
  ASSERT_EQ(newest.size(), 2u);  // trimmed to the newest two, oldest first
  EXPECT_EQ(newest[0]->trace_id(), "s4");
  EXPECT_EQ(newest[1]->trace_id(), "s5");
}

TEST(FlightRecorder, SamplingIsAPureFunctionOfTraceId) {
  obs::FlightRecorder never(tiny_flight(4, 4, -1.0));
  obs::FlightRecorder::Options always_opts = tiny_flight(4, 4, -1.0);
  always_opts.sample_rate = 1.0;
  obs::FlightRecorder always(always_opts);
  obs::FlightRecorder::Options half_opts = tiny_flight(4, 4, -1.0);
  half_opts.sample_rate = 0.5;
  obs::FlightRecorder half(half_opts);

  int sampled = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string id = "trace-" + std::to_string(i);
    EXPECT_FALSE(never.would_sample(id));
    EXPECT_TRUE(always.would_sample(id));
    const bool first = half.would_sample(id);
    EXPECT_EQ(half.would_sample(id), first);  // reproducible per id
    sampled += first ? 1 : 0;
  }
  EXPECT_GT(sampled, 50);   // loose two-sided bound on a fair-ish hash
  EXPECT_LT(sampled, 150);
  // begin() honours the same decision.
  EXPECT_TRUE(always.begin("x", "SOLVE", "")->sampled());
  EXPECT_FALSE(never.begin("x", "SOLVE", "")->sampled());
}

TEST(FlightRecorder, TraceCapsEventsAndCountsDrops) {
  obs::FlightRecorder fr(tiny_flight(2, 2, -1.0));
  auto t = fr.begin("big", "SOLVE", "");
  const std::size_t emissions = obs::RequestTrace::kMaxEvents + 100;
  for (std::size_t i = 0; i < emissions; ++i) {
    t->instant(EventKind::kIteration, "iter", static_cast<std::int64_t>(i));
  }
  fr.finish(t, "", 1.0);
  EXPECT_EQ(t->events().size(), obs::RequestTrace::kMaxEvents);
  EXPECT_EQ(t->dropped_events(), 100u);
}

TEST(FlightRecorder, ChromeExportIsValidAndCarriesIdentity) {
  obs::FlightRecorder fr(tiny_flight(8, 4, -1.0));
  auto t = fr.begin("abc123", "SOLVE", "attempt/2");
  t->begin_span(EventKind::kRequest, "SOLVE");
  t->record_span(EventKind::kQueue, "queue", 10.0, 20.0);
  t->begin_span(EventKind::kDispatch, "howard");
  t->instant(EventKind::kIteration, "iter", 5);
  t->end_span(EventKind::kDispatch);
  t->end_span(EventKind::kRequest);
  t->note("algo", "howard");
  fr.finish(t, "", 12.5);

  const std::string json = fr.chrome_trace_json({});
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"trace_id\":\"abc123\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span\":\"attempt/2\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("request_info"), std::string::npos);
  EXPECT_NE(json.find("\"algo\":\"howard\""), std::string::npos);

  // The post-mortem dump is the same exporter over everything retained.
  const std::string dump = fr.dump_json();
  EXPECT_TRUE(JsonChecker(dump).valid()) << dump;
  EXPECT_NE(dump.find("abc123"), std::string::npos);
}

TEST(FlightRecorder, ConcurrentRequestsStayBounded) {
  obs::FlightRecorder fr(tiny_flight(8, 4, 0.0));  // pin everything
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&fr, w] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string id = "w";
        id += std::to_string(w);
        id += '-';
        id += std::to_string(i);
        auto t = fr.begin(std::move(id), "SOLVE", "");
        t->begin_span(EventKind::kRequest, "SOLVE");
        t->end_span(EventKind::kRequest);
        fr.finish(t, i % 7 == 0 ? "BUSY" : "", 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fr.finished_total(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_LE(fr.ring_size(), 8u);
  EXPECT_LE(fr.pinned_size(), 4u);
  EXPECT_TRUE(JsonChecker(fr.dump_json()).valid());
}

// --- Metrics instruments ----------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("mcr_test_total");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&reg.counter("mcr_test_total"), &c);  // same instrument back

  obs::Gauge& ga = reg.gauge("mcr_test_gauge");
  ga.set(-3);
  ga.add(10);
  EXPECT_EQ(ga.value(), 7);
}

TEST(Metrics, CrossTypeNameReuseThrows) {
  obs::MetricsRegistry reg;
  (void)reg.counter("mcr_name");
  EXPECT_THROW((void)reg.gauge("mcr_name"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("mcr_name"), std::invalid_argument);
}

TEST(Metrics, HistogramBucketsArePrometheusStyle) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("mcr_lat_seconds", {0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket 0
  h.observe(0.5);    // bucket 1
  h.observe(1.0);    // bucket 1 (le is inclusive)
  h.observe(100.0);  // +Inf bucket
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 101.55);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE mcr_lat_seconds histogram"), std::string::npos);
  // Bucket counts are cumulative in the text exposition.
  EXPECT_NE(text.find("mcr_lat_seconds_bucket{le=\"1\"} 3"), std::string::npos);
  EXPECT_NE(text.find("mcr_lat_seconds_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(text.find("mcr_lat_seconds_count 4"), std::string::npos);
}

TEST(Metrics, PrometheusTextGroupsLabelVariants) {
  obs::MetricsRegistry reg;
  reg.counter("mcr_pool_tasks_total{worker=\"0\"}").add(3);
  reg.counter("mcr_pool_tasks_total{worker=\"1\"}").add(5);
  const std::string text = reg.prometheus_text();
  // One TYPE line for the base name, both labeled samples present.
  std::size_t type_lines = 0;
  for (std::size_t p = text.find("# TYPE mcr_pool_tasks_total counter");
       p != std::string::npos;
       p = text.find("# TYPE mcr_pool_tasks_total counter", p + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("mcr_pool_tasks_total{worker=\"0\"} 3"), std::string::npos);
  EXPECT_NE(text.find("mcr_pool_tasks_total{worker=\"1\"} 5"), std::string::npos);
}

TEST(Metrics, JsonExportIsValid) {
  obs::MetricsRegistry reg;
  reg.counter("mcr_a_total").add(1);
  reg.gauge("mcr_b").set(-7);
  reg.histogram("mcr_c_seconds", {0.5}).observe(0.1);
  const std::string json = reg.json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"mcr_a_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"mcr_b\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
}

TEST(Metrics, LabeledHistogramExportsGroupedPrometheusText) {
  obs::MetricsRegistry reg;
  reg.histogram("mcr_req_seconds", {0.1, 1.0}).observe(0.05);
  reg.histogram("mcr_req_seconds{verb=\"SOLVE\"}", {0.1, 1.0}).observe(0.5);
  reg.histogram("mcr_req_seconds{verb=\"PING\"}", {0.1, 1.0}).observe(0.01);
  const std::string text = reg.prometheus_text();
  // One TYPE line for the family, labels merged ahead of le on buckets,
  // and appended whole on _sum/_count.
  std::size_t type_lines = 0;
  for (std::size_t p = text.find("# TYPE mcr_req_seconds histogram");
       p != std::string::npos;
       p = text.find("# TYPE mcr_req_seconds histogram", p + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("mcr_req_seconds_bucket{le=\"0.1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mcr_req_seconds_bucket{verb=\"SOLVE\",le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mcr_req_seconds_bucket{verb=\"PING\",le=\"+Inf\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mcr_req_seconds_count{verb=\"SOLVE\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mcr_req_seconds_sum{verb=\"PING\"} 0.01"),
            std::string::npos)
      << text;
}

TEST(Metrics, HistogramExemplarKeepsWorstRecentPerBucket) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("mcr_ex_seconds", {0.1, 1.0});
  h.observe(0.5, "trace-a");
  h.observe(0.8, "trace-b");   // worse in the same bucket: replaces a
  h.observe(0.6, "trace-c");   // better while b is fresh: kept out
  h.observe(0.02, "trace-d");  // different bucket, lands independently
  h.observe(5.0, "trace-inf");
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.exemplars.size(), snap.counts.size());
  EXPECT_EQ(snap.exemplars[0].label, "trace-d");
  EXPECT_EQ(snap.exemplars[1].label, "trace-b");
  EXPECT_DOUBLE_EQ(snap.exemplars[1].value, 0.8);
  EXPECT_EQ(snap.exemplars[2].label, "trace-inf");  // +Inf bucket

  // Equal observations take over (recency wins ties)...
  h.observe(0.8, "trace-e");
  EXPECT_EQ(h.snapshot().exemplars[1].label, "trace-e");
  // ...and an unlabeled observation never clears a held exemplar.
  h.observe(0.9);
  EXPECT_EQ(h.snapshot().exemplars[1].label, "trace-e");

  // JSON exposes the exemplar next to its bucket; classic text does not
  // (the exposition format has no exemplar syntax).
  const std::string json = reg.json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"exemplar\":{\"value\":0.8,\"label\":\"trace-e\"}"),
            std::string::npos)
      << json;
  EXPECT_EQ(reg.prometheus_text().find("trace-e"), std::string::npos);
}

// --- Label escaping (Prometheus exposition format) --------------------

TEST(Metrics, EscapeLabelValueHandlesBackslashQuoteNewline) {
  EXPECT_EQ(obs::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::escape_label_value("two\nlines"), "two\\nlines");
  EXPECT_EQ(obs::escape_label_value("-O2 -DW=\"x\\y\"\n"),
            "-O2 -DW=\\\"x\\\\y\\\"\\n");
}

TEST(Metrics, LabeledNameEscapesEveryValue) {
  EXPECT_EQ(obs::labeled_name("mcr_x_total", {{"worker", "3"}}),
            "mcr_x_total{worker=\"3\"}");
  EXPECT_EQ(obs::labeled_name("mcr_build_info",
                              {{"flags", "-DA=\"q\\r\""}, {"note", "a\nb"}}),
            "mcr_build_info{flags=\"-DA=\\\"q\\\\r\\\"\",note=\"a\\nb\"}");
  EXPECT_EQ(obs::labeled_name("mcr_plain", {}), "mcr_plain");
}

TEST(Metrics, HostileLabelValuesSurviveBothExports) {
  obs::MetricsRegistry reg;
  reg.gauge(obs::labeled_name(
                "mcr_build_info",
                {{"flags", "-fplugin=\"weird\\path\""}, {"cpu_model", "a\nb"}}))
      .set(1);
  const std::string text = reg.prometheus_text();
  // One sample line, escapes intact, no raw newline smuggled into it.
  EXPECT_NE(text.find("flags=\"-fplugin=\\\"weird\\\\path\\\"\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cpu_model=\"a\\nb\""), std::string::npos) << text;
  EXPECT_EQ(text.find("a\nb"), std::string::npos) << text;
  EXPECT_TRUE(JsonChecker(reg.json()).valid()) << reg.json();
}

// --- TraceRecorder under concurrent producers and a live exporter -----

TEST(TraceRecorder, ConcurrentSpansWhileRecorderExports) {
  TraceRecorder rec;
  constexpr int kWorkers = 4;
  constexpr int kIterations = 200;
  std::atomic<int> active{kWorkers};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&rec, &active] {
      const obs::SinkScope scope(&rec);
      for (int i = 0; i < kIterations; ++i) {
        const obs::Span outer(EventKind::kComponent, "component#w");
        obs::emit(EventKind::kIteration, "iter", i);
        const obs::Span inner(EventKind::kMerge, "merge");
      }
      active.fetch_sub(1, std::memory_order_release);
    });
  }
  // Export continuously while the pool-worker spans are still flowing —
  // the recorder must hand back consistent snapshots, never torn ones.
  std::size_t last_size = 0;
  while (active.load(std::memory_order_acquire) > 0) {
    const std::string json = rec.chrome_trace_json();
    ASSERT_TRUE(JsonChecker(json).valid());
    const auto totals = rec.span_totals();
    for (const auto& [kind, seconds] : totals) EXPECT_GE(seconds, 0.0) << kind;
    const std::size_t size = rec.events().size();
    EXPECT_GE(size, last_size);  // the log only grows
    last_size = size;
  }
  for (auto& t : workers) t.join();

  // Final log: complete, balanced per thread, valid export.
  const auto events = rec.events();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kWorkers * kIterations * 5));
  std::map<std::uint32_t, int> depth;
  for (const auto& e : events) {
    if (e.phase == TraceRecorder::Phase::kBegin) ++depth[e.tid];
    if (e.phase == TraceRecorder::Phase::kEnd) {
      --depth[e.tid];
      ASSERT_GE(depth[e.tid], 0);
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
  EXPECT_EQ(rec.num_threads(), static_cast<std::size_t>(kWorkers));
  EXPECT_TRUE(JsonChecker(rec.chrome_trace_json()).valid());
}

// --- Driver metrics: the determinism contract -------------------------

std::map<std::string, std::uint64_t> solver_work_metrics(const Graph& g, int threads) {
  obs::MetricsRegistry reg;
  const auto solver = SolverRegistry::instance().create("howard");
  const SolveOptions options{.num_threads = threads, .metrics = &reg};
  (void)minimum_cycle_mean(g, *solver, options);
  // Re-read through the registry: only the deterministic solver-work
  // counters, not the scheduling-dependent mcr_pool_* ones.
  std::map<std::string, std::uint64_t> out;
  for (const char* name :
       {"mcr_solves_total", "mcr_components_cyclic_total", "mcr_ops_iterations_total",
        "mcr_ops_arc_scans_total", "mcr_ops_relaxations_total",
        "mcr_ops_node_visits_total", "mcr_ops_heap_total",
        "mcr_ops_feasibility_checks_total", "mcr_ops_cycle_evaluations_total"}) {
    out[name] = reg.counter(name).value();
  }
  return out;
}

TEST(DriverMetrics, SolverWorkTotalsIdenticalForAnyThreadCount) {
  const Graph g = multi_scc_graph();
  const auto serial = solver_work_metrics(g, 1);
  EXPECT_GT(serial.at("mcr_components_cyclic_total"), 1u);
  EXPECT_GT(serial.at("mcr_ops_arc_scans_total"), 0u);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(solver_work_metrics(g, threads), serial) << threads << " threads";
  }
}

TEST(DriverMetrics, ComponentHistogramCountsComponents) {
  const Graph g = multi_scc_graph();
  obs::MetricsRegistry reg;
  const auto solver = SolverRegistry::instance().create("howard");
  (void)minimum_cycle_mean(g, *solver, SolveOptions{.num_threads = 4, .metrics = &reg});
  const auto snap = reg.histogram("mcr_component_solve_seconds").snapshot();
  EXPECT_EQ(snap.count, reg.counter("mcr_components_cyclic_total").value());
  EXPECT_GE(snap.sum, 0.0);
}

// --- Windowed telemetry -----------------------------------------------

TEST(WindowedQuantile, GuardsDegenerateFamilies) {
  // No observations: undefined, never 0 or NaN.
  EXPECT_FALSE(obs::histogram_quantile({}, {}, 0, 0.5).has_value());
  EXPECT_FALSE(obs::histogram_quantile({1.0}, {0, 0}, 0, 0.99).has_value());
  // Observations but no finite bounds (single +Inf bucket): nothing to
  // interpolate against.
  EXPECT_FALSE(obs::histogram_quantile({}, {5}, 5, 0.5).has_value());
  // All mass in the +Inf bucket: the largest finite bound, as a floor.
  const auto inf_floor = obs::histogram_quantile({1.0}, {0, 5}, 5, 0.5);
  ASSERT_TRUE(inf_floor.has_value());
  EXPECT_DOUBLE_EQ(*inf_floor, 1.0);
  // The regular interpolated case, for contrast: rank 5 of 10 lands
  // mid-bucket between 1 and 2.
  const auto mid = obs::histogram_quantile({1.0, 2.0}, {0, 10, 10}, 10, 0.5);
  ASSERT_TRUE(mid.has_value());
  EXPECT_DOUBLE_EQ(*mid, 1.5);
}

TEST(WindowedHistogram, RotationDeterminismWithFakeClock) {
  std::int64_t now = 0;
  obs::SlidingWindowHistogram::Options o;
  o.window_seconds = 6.0;
  o.slots = 3;  // 2s sub-windows
  o.clock = [&now] { return now; };
  obs::SlidingWindowHistogram h({1.0, 10.0}, o);

  h.observe(0.5);  // tick 0
  now = 2'000'000'000;
  h.observe(5.0);  // tick 1
  now = 4'000'000'000;
  h.observe(0.5);  // tick 2
  auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 6.0);

  // Advancing one sub-window ages exactly the oldest slot out — no
  // observation is ever half-expired.
  now = 6'000'000'000;  // tick 3
  s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.sum, 5.5);

  // Recording in tick 3 reuses (and resets) the ring slot tick 0 held.
  h.observe(20.0);
  s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[2], 1u);  // 20.0 in the +Inf bucket

  // Far future: everything aged out; covered spans the live (empty)
  // window, not the histogram's whole lifetime.
  now = 12'000'000'000;  // tick 6; oldest live tick is 4
  s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_NEAR(s.covered_seconds, 4.0, 1e-9);
}

TEST(WindowedHistogram, MergeMatchesReferenceCumulative) {
  // While nothing has aged out, the merged window must agree exactly
  // with a cumulative histogram fed the same stream.
  std::int64_t now = 0;
  obs::SlidingWindowHistogram::Options o;
  o.window_seconds = 60.0;
  o.slots = 6;  // 10s sub-windows; we stay within ticks 0..5
  o.clock = [&now] { return now; };
  const std::vector<double> bounds{0.25, 0.5, 1.0};
  obs::SlidingWindowHistogram windowed(bounds, o);
  obs::Histogram reference(bounds);

  Prng prng(42);
  for (int i = 0; i < 5000; ++i) {
    now = prng.uniform_int(0, 59) * 1'000'000'000;
    const double x = prng.uniform_real() * 2.0;
    windowed.observe(x);
    reference.observe(x);
  }
  const auto w = windowed.snapshot();
  const auto r = reference.snapshot();
  EXPECT_EQ(w.count, r.count);
  ASSERT_EQ(w.counts.size(), r.counts.size());
  for (std::size_t i = 0; i < w.counts.size(); ++i) {
    EXPECT_EQ(w.counts[i], r.counts[i]) << "bucket " << i;
  }
  EXPECT_NEAR(w.sum, r.sum, 1e-6);
  // And the cumulative transform feeding histogram_quantile is a plain
  // prefix sum.
  const auto cumulative = obs::SlidingWindowHistogram::cumulative_counts(w);
  ASSERT_EQ(cumulative.size(), w.counts.size());
  EXPECT_EQ(cumulative.back(), w.count);
}

TEST(WindowedHistogram, ConcurrentRecordReadStaysBounded) {
  // Hammer a tiny, fast-rotating window from several writers while a
  // reader merges continuously. The documented contract: the merge
  // never *exceeds* what was recorded (observations racing a rotation
  // may drop, never double), and nothing trips TSan.
  obs::SlidingWindowHistogram::Options o;
  o.window_seconds = 0.05;
  o.slots = 5;
  obs::SlidingWindowHistogram h({0.5}, o);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> bad{0};
  std::thread reader([&] {
    while (!done.load()) {
      const auto s = h.snapshot();
      if (s.count > static_cast<std::uint64_t>(kWriters) * kPerWriter) {
        bad.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerWriter; ++i) h.observe(i % 2 == 0 ? 0.25 : 0.75);
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0u);
  // The final snapshot is similarly bounded.
  EXPECT_LE(h.snapshot().count,
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(Metrics, WindowedSharesHistogramNamesButConflictsWithScalars) {
  obs::MetricsRegistry reg;
  // Deliberate: the windowed instrument is the live view of the same
  // family as the cumulative histogram.
  reg.histogram("mcr_request_seconds", {0.1, 1.0}).observe(0.5);
  reg.windowed_histogram("mcr_request_seconds", {0.1, 1.0}).observe(0.5);
  // Scalar instruments still conflict, in both directions.
  (void)reg.counter("mcr_taken_total");
  EXPECT_THROW((void)reg.windowed_histogram("mcr_taken_total"),
               std::invalid_argument);
  (void)reg.windowed_histogram("mcr_windowed_only_seconds");
  EXPECT_THROW((void)reg.counter("mcr_windowed_only_seconds"),
               std::invalid_argument);
  EXPECT_THROW((void)reg.gauge("mcr_windowed_only_seconds"),
               std::invalid_argument);
  // JSON exposes windowed instruments under their own key; the classic
  // Prometheus text has no windowed semantics and must not grow a
  // colliding series.
  const std::string json = reg.json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"windowed\":"), std::string::npos) << json;
  EXPECT_EQ(reg.prometheus_text().find("mcr_windowed_only_seconds"),
            std::string::npos);
  const auto snapshots = reg.windowed_snapshots();
  ASSERT_EQ(snapshots.size(), 2u);  // the shared name and the windowed-only one
  EXPECT_EQ(snapshots.at("mcr_request_seconds").count, 1u);
}

TEST(Metrics, ExemplarStaleTakeoverWithInjectedClock) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("mcr_stale_seconds", {1.0});
  std::chrono::steady_clock::time_point now{};
  h.set_exemplar_clock([&now] { return now; });

  h.observe(0.9, "trace-slow");
  h.observe(0.5, "trace-better");  // smaller while the holder is fresh
  EXPECT_EQ(h.snapshot().exemplars[0].label, "trace-slow");

  // Past the 60s staleness horizon a *smaller* observation takes the
  // slot over — "worst recent", not "worst ever".
  now += std::chrono::seconds(61);
  h.observe(0.1, "trace-fresh");
  auto snap = h.snapshot();
  EXPECT_EQ(snap.exemplars[0].label, "trace-fresh");
  EXPECT_DOUBLE_EQ(snap.exemplars[0].value, 0.1);

  // Within the horizon the usual worst-wins rule is back.
  now += std::chrono::seconds(30);
  h.observe(0.05, "trace-small");
  EXPECT_EQ(h.snapshot().exemplars[0].label, "trace-fresh");
}

// --- ThreadPool worker stats ------------------------------------------

TEST(ThreadPoolStats, TasksExecutedSumsToSubmitted) {
  ThreadPool pool(3);
  for (int i = 0; i < 500; ++i) {
    pool.submit([] {});
  }
  pool.wait_idle();
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& w : stats) {
    total += w.tasks_executed;
    EXPECT_GE(w.idle_seconds, 0.0);
  }
  EXPECT_EQ(total, 500u);
}

}  // namespace
}  // namespace mcr
