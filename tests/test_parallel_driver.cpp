// The parallel SCC driver's contract: SolveOptions{num_threads} changes
// wall-clock only — the returned CycleResult (value, witness, has_cycle,
// counters) is bit-identical for every thread count, for every solver.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/driver.h"
#include "core/registry.h"
#include "core/verify.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/builder.h"
#include "support/thread_pool.h"

namespace mcr {
namespace {

// --- ThreadPool unit tests -------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  EXPECT_EQ(pool.size(), 2);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      count.fetch_add(1, std::memory_order_relaxed);
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // no wait_idle: the destructor must finish the queue
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
  ThreadPool pool(0);  // 0 = auto
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
}

// --- Determinism across thread counts --------------------------------

void expect_identical(const CycleResult& a, const CycleResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.has_cycle, b.has_cycle) << what;
  if (!a.has_cycle) return;
  EXPECT_EQ(a.value, b.value) << what;
  EXPECT_EQ(a.cycle, b.cycle) << what;
  EXPECT_EQ(a.counters, b.counters) << what;
}

std::vector<Graph> multi_scc_instances() {
  std::vector<Graph> out;
  // Circuit-family graphs: hundreds of small cyclic SCCs.
  gen::CircuitConfig cc;
  cc.registers = 120;
  cc.module_size = 8;
  cc.seed = 7;
  out.push_back(gen::circuit(cc));
  // SPRAND: typically one giant SCC plus debris.
  gen::SprandConfig sc;
  sc.n = 96;
  sc.m = 240;
  sc.seed = 11;
  out.push_back(gen::sprand(sc));
  // Torus: a single SCC (threads must degrade gracefully to 1 task).
  out.push_back(gen::torus(6, 6, 1, 1000, 13));
  // Many identical-size components chained.
  out.push_back(gen::scc_chain(12, 5, 1, 99, 17));
  return out;
}

TEST(ParallelDriver, BitIdenticalAcrossThreadCountsAllMeanSolvers) {
  const auto graphs = multi_scc_instances();
  for (const auto& name : SolverRegistry::instance().names(ProblemKind::kCycleMean)) {
    if (name.rfind("brute_force", 0) == 0) continue;  // oracle: too slow here
    const auto solver = SolverRegistry::instance().create(name);
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const CycleResult serial = minimum_cycle_mean(graphs[gi], *solver);
      for (const int threads : {2, 8}) {
        const CycleResult parallel =
            minimum_cycle_mean(graphs[gi], *solver, SolveOptions{threads});
        expect_identical(serial, parallel,
                         name + " graph#" + std::to_string(gi) + " threads=" +
                             std::to_string(threads));
      }
      EXPECT_TRUE(verify_result(graphs[gi], serial, ProblemKind::kCycleMean).ok)
          << name << " graph#" << gi;
    }
  }
}

TEST(ParallelDriver, BitIdenticalAcrossThreadCountsRatioSolvers) {
  gen::SprandConfig sc;
  sc.n = 60;
  sc.m = 180;
  sc.min_transit = 1;
  sc.max_transit = 5;
  sc.seed = 23;
  std::vector<Graph> graphs;
  graphs.push_back(gen::sprand(sc));
  graphs.push_back(gen::scc_chain(8, 4, 1, 50, 29));
  for (const auto& name : SolverRegistry::instance().names(ProblemKind::kCycleRatio)) {
    if (name.rfind("brute_force", 0) == 0) continue;
    if (name == "ho_ratio") continue;  // Theta(Tn) memory; covered elsewhere
    const auto solver = SolverRegistry::instance().create(name);
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const CycleResult serial = minimum_cycle_ratio(graphs[gi], *solver);
      for (const int threads : {2, 8}) {
        const CycleResult parallel =
            minimum_cycle_ratio(graphs[gi], *solver, SolveOptions{threads});
        expect_identical(serial, parallel,
                         name + " graph#" + std::to_string(gi) + " threads=" +
                             std::to_string(threads));
      }
    }
  }
}

TEST(ParallelDriver, MaximumVariantsAndAutoThreads) {
  const Graph g = gen::scc_chain(10, 4, -20, 20, 31);
  const CycleResult serial = maximum_cycle_mean(g, "howard");
  const CycleResult parallel = maximum_cycle_mean(g, "howard", SolveOptions{0});
  expect_identical(serial, parallel, "maximum_cycle_mean auto threads");
}

TEST(ParallelDriver, AcyclicGraphAllThreadCounts) {
  for (const int threads : {1, 2, 8}) {
    const auto r = minimum_cycle_mean(gen::path(20), "howard", SolveOptions{threads});
    EXPECT_FALSE(r.has_cycle) << threads;
  }
}

TEST(ParallelDriver, SolverFailureIsReportedFromWorkerThreads) {
  // A mean solver handed to the ratio entry point throws on the calling
  // thread regardless of threading (kind check happens before dispatch);
  // ratio validation errors also surface identically.
  GraphBuilder b(2);
  b.add_arc(0, 1, 1, 0);
  b.add_arc(1, 0, 1, 0);  // zero-transit cycle
  const Graph g = b.build();
  const auto solver = SolverRegistry::instance().create("howard_ratio");
  for (const int threads : {1, 4}) {
    EXPECT_THROW((void)minimum_cycle_ratio(g, *solver, SolveOptions{threads}),
                 std::invalid_argument)
        << threads;
  }
}

// --- solve_many -------------------------------------------------------

TEST(ParallelDriver, SolveManyMatchesSingleInstanceSolves) {
  const auto graphs = multi_scc_instances();
  const auto solver = SolverRegistry::instance().create("howard");
  for (const int threads : {1, 2, 8}) {
    const auto batch = solve_many(graphs, *solver, SolveOptions{threads});
    ASSERT_EQ(batch.size(), graphs.size());
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      const CycleResult single = minimum_cycle_mean(graphs[i], *solver);
      expect_identical(single, batch[i],
                       "solve_many[" + std::to_string(i) + "] threads=" +
                           std::to_string(threads));
    }
  }
}

TEST(ParallelDriver, SolveManyRatioValidatesEveryInstance) {
  GraphBuilder bad(2);
  bad.add_arc(0, 1, 1, 0);
  bad.add_arc(1, 0, 1, 0);
  std::vector<Graph> graphs;
  graphs.push_back(gen::ring({1, 2, 3}));
  graphs.push_back(bad.build());
  const auto solver = SolverRegistry::instance().create("howard_ratio");
  EXPECT_THROW((void)solve_many(graphs, *solver, SolveOptions{4}),
               std::invalid_argument);
}

TEST(ParallelDriver, SolveManyEmptyBatch) {
  const auto solver = SolverRegistry::instance().create("howard");
  const auto batch = solve_many(std::span<const Graph>{}, *solver, SolveOptions{8});
  EXPECT_TRUE(batch.empty());
}

TEST(ParallelDriver, SolveManyOnManySccInstance) {
  // One instance with many SCCs repeated: the batch path must agree with
  // the per-SCC-parallel path bit for bit.
  std::vector<Graph> graphs;
  for (int s = 0; s < 6; ++s) {
    graphs.push_back(gen::scc_chain(9, 5, 1, 77, 40 + static_cast<std::uint64_t>(s)));
  }
  const auto solver = SolverRegistry::instance().create("karp");
  const auto batch = solve_many(graphs, *solver, SolveOptions{8});
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const CycleResult scc_parallel =
        minimum_cycle_mean(graphs[i], *solver, SolveOptions{8});
    expect_identical(scc_parallel, batch[i], "instance " + std::to_string(i));
    EXPECT_TRUE(verify_result(graphs[i], batch[i], ProblemKind::kCycleMean).ok);
  }
}

}  // namespace
}  // namespace mcr
