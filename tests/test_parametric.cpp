// KO/YTO-specific behaviour: identical pivot sequences, the §4.2 heap
// operation comparison, and heap-choice independence.
#include <gtest/gtest.h>

#include "core/driver.h"
#include "core/registry.h"
#include "gen/sprand.h"
#include "gen/structured.h"

namespace mcr {
namespace {

Graph random_graph(NodeId n, ArcId m, std::uint64_t seed) {
  gen::SprandConfig cfg;
  cfg.n = n;
  cfg.m = m;
  cfg.seed = seed;
  return gen::sprand(cfg);
}

TEST(Parametric, KoAndYtoPerformSameNumberOfPivots) {
  // §4.3: "the KO and YTO algorithms perform the same number of
  // iterations" — they process the same breakpoint sequence.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = random_graph(120, 360, seed);
    const auto ko = minimum_cycle_mean(g, "ko");
    const auto yto = minimum_cycle_mean(g, "yto");
    EXPECT_EQ(ko.value, yto.value);
    EXPECT_EQ(ko.counters.iterations, yto.counters.iterations) << "seed " << seed;
  }
}

TEST(Parametric, YtoDoesFewerHeapInsertions) {
  // §4.2: "the YTO algorithm provides savings in the number of heap
  // operations, especially in the number of insertions", growing with
  // density.
  const Graph g = random_graph(200, 600, 9);
  const auto ko = minimum_cycle_mean(g, "ko");
  const auto yto = minimum_cycle_mean(g, "yto");
  EXPECT_LT(yto.counters.heap_inserts, ko.counters.heap_inserts);
  EXPECT_LT(yto.counters.heap_total(), ko.counters.heap_total());
}

TEST(Parametric, HeapChoiceDoesNotChangeAnswerOrPivots) {
  const Graph g = random_graph(100, 250, 5);
  const auto fib = minimum_cycle_mean(g, "yto");
  const auto bin = minimum_cycle_mean(g, "yto_bin");
  const auto pair = minimum_cycle_mean(g, "yto_pair");
  EXPECT_EQ(fib.value, bin.value);
  EXPECT_EQ(fib.value, pair.value);
  EXPECT_EQ(fib.counters.iterations, bin.counters.iterations);
  EXPECT_EQ(fib.counters.iterations, pair.counters.iterations);
}

TEST(Parametric, KoHeapVariantsAgree) {
  const Graph g = random_graph(80, 240, 6);
  const auto fib = minimum_cycle_mean(g, "ko");
  const auto bin = minimum_cycle_mean(g, "ko_bin");
  const auto pair = minimum_cycle_mean(g, "ko_pair");
  EXPECT_EQ(fib.value, bin.value);
  EXPECT_EQ(fib.value, pair.value);
}

TEST(Parametric, IterationsBoundedByN2AndTypicallyNOver2) {
  // §4.3: iterations always < n on these graphs, around n/2.
  const NodeId n = 300;
  const Graph g = random_graph(n, 2 * n, 10);
  const auto yto = minimum_cycle_mean(g, "yto");
  EXPECT_LT(yto.counters.iterations, static_cast<std::uint64_t>(n));
  EXPECT_GT(yto.counters.iterations, 5u);
}

TEST(Parametric, BurnsAndKoIterationsAreBothAroundHalfN) {
  // §4.3: on random graphs "the number of iterations for the first
  // three algorithms is around n/2" and Burns is comparable to KO (the
  // paper saw it slightly lower; our double-precision Burns splits some
  // tied steps, so we assert the same order of magnitude rather than
  // the strict inequality).
  std::uint64_t burns_total = 0;
  std::uint64_t ko_total = 0;
  const NodeId n = 150;
  int cases = 0;
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u, 25u, 26u, 27u, 28u}) {
    const Graph g = random_graph(n, 3 * n, seed);
    burns_total += minimum_cycle_mean(g, "burns").counters.iterations;
    ko_total += minimum_cycle_mean(g, "ko").counters.iterations;
    ++cases;
  }
  const std::uint64_t bound = static_cast<std::uint64_t>(cases) * static_cast<std::uint64_t>(n);
  EXPECT_LT(burns_total, bound);         // < n per case on average
  EXPECT_LT(ko_total, bound);
  EXPECT_LT(burns_total, ko_total * 2);  // same order as KO
  EXPECT_LT(ko_total, burns_total * 2);
}

TEST(Parametric, HamiltonianCycleInstance) {
  // m == n: the single Hamiltonian cycle is the answer.
  const Graph g = random_graph(64, 64, 3);
  const auto yto = minimum_cycle_mean(g, "yto");
  const auto karp = minimum_cycle_mean(g, "karp");
  ASSERT_TRUE(yto.has_cycle);
  EXPECT_EQ(yto.value, karp.value);
  EXPECT_EQ(yto.cycle.size(), 64u);
}

TEST(Parametric, SelfLoopPivot) {
  // A self-loop can be the closing pivot.
  const std::vector<ArcSpec> arcs{ArcSpec{0, 1, 10, 1}, ArcSpec{1, 0, 10, 1},
                                  ArcSpec{1, 1, 2, 1}};
  const Graph g(2, arcs);
  const auto yto = minimum_cycle_mean(g, "yto");
  ASSERT_TRUE(yto.has_cycle);
  EXPECT_EQ(yto.value, Rational(2));
  EXPECT_EQ(yto.cycle.size(), 1u);
}

TEST(Parametric, RatioVariantAgainstLawler) {
  gen::SprandConfig cfg;
  cfg.n = 60;
  cfg.m = 150;
  cfg.min_transit = 1;
  cfg.max_transit = 8;
  cfg.seed = 12;
  const Graph g = gen::sprand(cfg);
  const auto yto = minimum_cycle_ratio(g, "yto_ratio");
  const auto lawler = minimum_cycle_ratio(g, "lawler_ratio");
  EXPECT_EQ(yto.value, lawler.value);
}

}  // namespace
}  // namespace mcr
