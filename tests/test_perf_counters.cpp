// mcr::obs perf counters — the contracts under test:
//   * A denied perf_event_open (EACCES/ENOSYS — the container reality)
//     degrades to the timer-only backend: wall time still flows, the
//     fallback reason names the errno, and PerfScope records no
//     mcr_perf_* metrics and emits no perf_counter instants.
//   * Broken fds (reads that fail after open) leave individual counters
//     unavailable without poisoning the sample or the wall clock.
//   * When counters ARE available (machine-dependent), PerfScope feeds
//     per-phase totals into the registry and instants into the sink.
#include <gtest/gtest.h>

#include <fcntl.h>

#include <cerrno>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/perf_counters.h"
#include "obs/trace_recorder.h"

namespace mcr {
namespace {

using obs::PerfCounter;
using obs::PerfCounterGroup;
using obs::PerfSample;
using obs::PerfScope;

int deny_eacces(std::uint32_t, std::uint64_t) { return -EACCES; }
int deny_enosys(std::uint32_t, std::uint64_t) { return -ENOSYS; }
int open_dev_null(std::uint32_t, std::uint64_t) {
  const int fd = ::open("/dev/null", O_RDONLY);
  return fd >= 0 ? fd : -errno;
}

/// A little measurable work so wall_seconds is strictly positive.
void spin() {
  volatile std::uint64_t acc = 0;
  for (int i = 0; i < 50000; ++i) acc += static_cast<std::uint64_t>(i);
}

TEST(PerfCounters, ToStringNamesAreStableArtifactKeys) {
  EXPECT_STREQ(obs::to_string(PerfCounter::kCycles), "cycles");
  EXPECT_STREQ(obs::to_string(PerfCounter::kInstructions), "instructions");
  EXPECT_STREQ(obs::to_string(PerfCounter::kBranchMisses), "branch_misses");
  EXPECT_STREQ(obs::to_string(PerfCounter::kCacheReferences), "cache_references");
  EXPECT_STREQ(obs::to_string(PerfCounter::kCacheMisses), "cache_misses");
  EXPECT_STREQ(obs::to_string(PerfCounter::kTaskClock), "task_clock_ns");
}

TEST(PerfCounters, EaccesFallsBackToTimerBackend) {
  PerfCounterGroup group(&deny_eacces);
  EXPECT_FALSE(group.hardware());
  EXPECT_STREQ(group.backend(), "timer");
  EXPECT_EQ(group.fallback_reason(), "EACCES");

  group.start();
  spin();
  const PerfSample sample = group.stop();
  EXPECT_FALSE(sample.any_available());
  EXPECT_GT(sample.wall_seconds, 0.0);
}

TEST(PerfCounters, EnosysFallsBackToTimerBackend) {
  PerfCounterGroup group(&deny_enosys);
  EXPECT_FALSE(group.hardware());
  EXPECT_EQ(group.fallback_reason(), "ENOSYS");
}

TEST(PerfCounters, UnreadableFdsLeaveCountersUnavailable) {
  // The opener "succeeds" but hands back fds whose reads cannot yield a
  // counter record; stop() must shrug per counter, not fail the sample.
  PerfCounterGroup group(&open_dev_null);
  EXPECT_TRUE(group.hardware());  // fds did open
  group.start();
  spin();
  const PerfSample sample = group.stop();
  EXPECT_FALSE(sample.any_available());
  EXPECT_GT(sample.wall_seconds, 0.0);
}

TEST(PerfCounters, TimerOnlyScopeRecordsNoPerfMetricsOrInstants) {
  PerfCounterGroup group(&deny_eacces);
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  PerfSample sample;
  {
    const obs::SinkScope scope(&recorder);
    PerfScope perf(group, "solve", &registry);
    perf.capture_into(&sample);
    spin();
  }
  EXPECT_GT(sample.wall_seconds, 0.0);
  EXPECT_EQ(registry.prometheus_text().find("mcr_perf_"), std::string::npos);
  EXPECT_TRUE(recorder.events().empty());
}

TEST(PerfCounters, DefaultGroupMeasuresWallTimeOnAnyBackend) {
  PerfCounterGroup group;  // real syscall: either backend is legal here
  if (!group.hardware()) {
    EXPECT_FALSE(group.fallback_reason().empty());
  }
  group.start();
  spin();
  const PerfSample sample = group.stop();
  EXPECT_GT(sample.wall_seconds, 0.0);
  for (std::size_t i = 0; i < obs::kNumPerfCounters; ++i) {
    if (!group.hardware()) EXPECT_FALSE(sample.available[i]);
  }
}

TEST(PerfCounters, ScopeFeedsMetricsAndInstantsWhenAvailable) {
  PerfCounterGroup group;
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  PerfSample sample;
  {
    const obs::SinkScope scope(&recorder);
    PerfScope perf(group, "phase_x", &registry);
    perf.capture_into(&sample);
    spin();
  }
  if (!sample.any_available()) {
    GTEST_SKIP() << "no perf counters in this environment ("
                 << group.fallback_reason() << ")";
  }
  // Each available counter shows up as a per-phase metric and as one
  // perf_counter instant named "<phase>.<counter>".
  const std::string text = registry.prometheus_text();
  std::size_t instants = 0;
  for (const auto& e : recorder.events()) {
    EXPECT_EQ(e.kind, obs::EventKind::kPerfCounter);
    EXPECT_EQ(e.name.rfind("phase_x.", 0), 0u) << e.name;
    ++instants;
  }
  std::size_t available = 0;
  for (std::size_t i = 0; i < obs::kNumPerfCounters; ++i) {
    if (!sample.available[i]) continue;
    ++available;
    const std::string metric =
        std::string("mcr_perf_") + obs::to_string(static_cast<PerfCounter>(i)) +
        "_total{phase=\"phase_x\"}";
    EXPECT_NE(text.find(metric), std::string::npos) << metric << "\n" << text;
  }
  EXPECT_EQ(instants, available);
}

}  // namespace
}  // namespace mcr
