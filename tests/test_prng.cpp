#include "support/prng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

namespace mcr {
namespace {

TEST(Prng, SameSeedSameStream) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Prng, UniformIntStaysInRange) {
  Prng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Prng, UniformIntSingletonRange) {
  Prng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Prng, UniformIntCoversRange) {
  Prng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Prng, UniformIntRoughlyUniform) {
  Prng rng(11);
  std::array<int, 10> buckets{};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++buckets[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (const int c : buckets) {
    EXPECT_GT(c, trials / 10 - trials / 50);
    EXPECT_LT(c, trials / 10 + trials / 50);
  }
}

TEST(Prng, UniformRealInHalfOpenUnitInterval) {
  Prng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, BernoulliExtremes) {
  Prng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Prng, BernoulliRate) {
  Prng rng(19);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Prng, ShuffleIsPermutation) {
  Prng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v.data(), v.size());
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Prng, ShuffleActuallyMoves) {
  Prng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v.data(), v.size());
  int fixed = 0;
  for (int i = 0; i < 100; ++i) fixed += v[static_cast<std::size_t>(i)] == i ? 1 : 0;
  EXPECT_LT(fixed, 20);
}

TEST(Prng, ForkSeedProducesIndependentStream) {
  Prng a(31);
  Prng b(a.fork_seed());
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Prng, ZeroSeedIsValid) {
  Prng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.next());
  EXPECT_GT(seen.size(), 90u);
}

}  // namespace
}  // namespace mcr
