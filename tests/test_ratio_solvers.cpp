// Minimum cost-to-time ratio solvers: hand-crafted cases, the
// mean-as-special-case reduction, and cross-validation against the
// brute-force ratio oracle.
#include <gtest/gtest.h>

#include "core/driver.h"
#include "core/registry.h"
#include "core/verify.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

class RatioSolverTest : public ::testing::TestWithParam<std::string> {
 protected:
  CycleResult solve(const Graph& g) const {
    return minimum_cycle_ratio(g, GetParam());
  }
};

TEST_P(RatioSolverTest, SelfLoopRatio) {
  GraphBuilder b(1);
  b.add_arc(0, 0, 9, 4);
  const auto r = solve(b.build());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(9, 4));
}

TEST_P(RatioSolverTest, RingRatio) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 2, 1);
  b.add_arc(1, 2, 3, 2);
  b.add_arc(2, 0, 5, 2);  // ratio 10/5 = 2
  const auto r = solve(b.build());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(2));
}

TEST_P(RatioSolverTest, TransitChangesWinner) {
  // Same weights; transit flips which cycle is optimal.
  GraphBuilder b(4);
  b.add_arc(0, 1, 10, 1);
  b.add_arc(1, 0, 10, 1);  // ratio 10
  b.add_arc(2, 3, 10, 5);
  b.add_arc(3, 2, 10, 5);  // ratio 2
  const auto r = solve(b.build());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(2));
}

TEST_P(RatioSolverTest, WithUnitTransitEqualsMean) {
  gen::SprandConfig cfg;
  cfg.n = 40;
  cfg.m = 100;
  cfg.seed = 2024;
  const Graph g = gen::sprand(cfg);  // all transit 1
  const auto ratio = solve(g);
  const auto mean = minimum_cycle_mean(g, "karp");
  ASSERT_TRUE(ratio.has_cycle);
  EXPECT_EQ(ratio.value, mean.value);
}

TEST_P(RatioSolverTest, ZeroTransitArcOnOptimalCycle) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 3, 0);
  b.add_arc(1, 0, 3, 2);  // cycle: w=6, t=2, ratio 3
  const auto r = solve(b.build());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(3));
}

TEST_P(RatioSolverTest, NegativeWeightsPositiveTransit) {
  GraphBuilder b(2);
  b.add_arc(0, 1, -6, 2);
  b.add_arc(1, 0, 2, 2);   // 2-cycle: (-6+2)/(2+2) = -1
  b.add_arc(0, 0, -1, 1);  // self-loop: -1 (tie)
  const auto r = solve(b.build());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(-1));
}

TEST_P(RatioSolverTest, AgainstBruteForceOracle) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    gen::SprandConfig cfg;
    cfg.n = 16;
    cfg.m = 36;
    cfg.min_transit = 1;
    cfg.max_transit = 6;
    cfg.seed = seed;
    const Graph g = gen::sprand(cfg);
    const auto r = solve(g);
    const auto oracle = minimum_cycle_ratio(g, "brute_force_ratio");
    ASSERT_TRUE(r.has_cycle);
    EXPECT_EQ(r.value, oracle.value) << "seed " << seed;
    const auto cert = verify_result(g, r, ProblemKind::kCycleRatio);
    EXPECT_TRUE(cert.ok) << cert.message;
  }
}

TEST_P(RatioSolverTest, LargerRandomCrossValidation) {
  // The ratio solvers must agree among themselves on larger graphs.
  gen::SprandConfig cfg;
  cfg.n = 80;
  cfg.m = 200;
  cfg.min_transit = 1;
  cfg.max_transit = 10;
  cfg.seed = 99;
  const Graph g = gen::sprand(cfg);
  const auto r = solve(g);
  const auto reference = minimum_cycle_ratio(g, "howard_ratio");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, reference.value);
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleRatio).ok);
}

TEST_P(RatioSolverTest, WitnessConsistency) {
  gen::SprandConfig cfg;
  cfg.n = 30;
  cfg.m = 90;
  cfg.min_transit = 1;
  cfg.max_transit = 4;
  cfg.seed = 7;
  const Graph g = gen::sprand(cfg);
  const auto r = solve(g);
  ASSERT_TRUE(r.has_cycle);
  EXPECT_TRUE(is_valid_cycle(g, r.cycle));
  EXPECT_EQ(cycle_ratio(g, r.cycle), r.value);
}

INSTANTIATE_TEST_SUITE_P(AllRatioSolvers, RatioSolverTest,
                         ::testing::Values("howard_ratio", "yto_ratio", "burns_ratio",
                                           "lawler_ratio", "cycle_cancel_ratio", "ho_ratio",
                                           "megiddo_ratio"),
                         [](const auto& param_info) { return param_info.param; });

// The iteration-bound application style check: maximum cycle ratio.
TEST(MaxRatio, IterationBoundStyle) {
  // Dataflow loop: total computation time 16 over 2 delays = bound 8,
  // versus a second loop 9/3 = 3. Max is 8.
  GraphBuilder b(5);
  b.add_arc(0, 1, 10, 1);
  b.add_arc(1, 0, 6, 1);
  b.add_arc(2, 3, 3, 1);
  b.add_arc(3, 4, 3, 1);
  b.add_arc(4, 2, 3, 1);
  b.add_arc(0, 2, 1, 1);
  const auto r = maximum_cycle_ratio(b.build(), "howard_ratio");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(8));
}

}  // namespace
}  // namespace mcr
