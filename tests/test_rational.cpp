#include "support/rational.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace mcr {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, IntegerConversionIsImplicit) {
  Rational r = 7;
  EXPECT_EQ(r.num(), 7);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, ReducesToLowestTerms) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalizesSignOntoNumerator) {
  Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
  Rational q(-3, -6);
  EXPECT_EQ(q.num(), 1);
  EXPECT_EQ(q.den(), 2);
}

TEST(Rational, ZeroNumeratorNormalizesDenominator) {
  Rational r(0, 17);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, EqualityIsValueEquality) {
  EXPECT_EQ(Rational(1, 2), Rational(2, 4));
  EXPECT_NE(Rational(1, 2), Rational(1, 3));
}

TEST(Rational, TotalOrder) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GT(Rational(5, 2), Rational(2));
  EXPECT_LE(Rational(3, 6), Rational(1, 2));
  EXPECT_GE(Rational(0), Rational(-1, 1000000));
}

TEST(Rational, OrderingAvoidsOverflow) {
  // Cross multiplication of near-max values must not wrap.
  const Rational big(INT64_MAX / 2, 3);
  const Rational small(1, INT64_MAX / 2);
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
  EXPECT_EQ(Rational(2, 4) + Rational(2, 4), Rational(1));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(1, 3) - Rational(1, 2), Rational(-1, 6));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 3) * Rational(3, 2), Rational(-1));
}

TEST(Rational, MultiplicationCrossReducesLargeOperands) {
  // (a/b) * (b/a) = 1 even when a*b would overflow.
  const std::int64_t a = 3'037'000'499;  // ~sqrt(2^63)
  const Rational x(a, 7);
  const Rational y(7, a);
  EXPECT_EQ(x * y, Rational(1));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(Rational(3) / Rational(-6), Rational(-1, 2));
  EXPECT_THROW(Rational(1) / Rational(0), std::invalid_argument);
}

TEST(Rational, Negation) {
  EXPECT_EQ(-Rational(3, 7), Rational(-3, 7));
  EXPECT_EQ(-Rational(0), Rational(0));
}

TEST(Rational, CompoundAssignment) {
  Rational r(1, 2);
  r += Rational(1, 2);
  EXPECT_EQ(r, Rational(1));
  r -= Rational(1, 4);
  EXPECT_EQ(r, Rational(3, 4));
  r *= Rational(4, 3);
  EXPECT_EQ(r, Rational(1));
  r /= Rational(2);
  EXPECT_EQ(r, Rational(1, 2));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-7, 4).to_double(), -1.75);
}

TEST(Rational, ToStringAndStream) {
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(-3, 4).to_string(), "-3/4");
  std::ostringstream os;
  os << Rational(7, 2);
  EXPECT_EQ(os.str(), "7/2");
}

TEST(Rational, AdditionOverflowThrows) {
  const Rational huge(INT64_MAX - 1, 1);
  EXPECT_THROW(huge + huge, std::overflow_error);
}

TEST(Rational, CompareFraction) {
  EXPECT_EQ(compare_fraction(1, 2, Rational(1, 2)), std::strong_ordering::equal);
  EXPECT_EQ(compare_fraction(1, 3, Rational(1, 2)), std::strong_ordering::less);
  EXPECT_EQ(compare_fraction(-1, 3, Rational(-1, 2)), std::strong_ordering::greater);
  EXPECT_EQ(compare_fraction(10, 4, Rational(5, 2)), std::strong_ordering::equal);
}

TEST(Rational, AdditionReducesIn128Bits) {
  // num*den' + num'*den exceeds 64 bits before reduction but the sum is
  // small after reduction.
  const std::int64_t d = 4'000'000'000;
  const Rational a(1, d);
  const Rational b(d - 1, d);
  EXPECT_EQ(a + b, Rational(1));
}

}  // namespace
}  // namespace mcr
