#include "core/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace mcr {
namespace {

TEST(Registry, ContainsAllPaperTable2Algorithms) {
  const auto& r = SolverRegistry::instance();
  for (const char* name :
       {"burns", "ko", "yto", "howard", "ho", "karp", "dg", "lawler", "karp2", "oa1"}) {
    EXPECT_TRUE(r.has(name)) << name;
    EXPECT_TRUE(r.info(name).in_paper_table2) << name;
  }
}

TEST(Registry, ContainsRatioSolvers) {
  const auto& r = SolverRegistry::instance();
  for (const char* name : {"howard_ratio", "yto_ratio", "burns_ratio", "lawler_ratio"}) {
    EXPECT_TRUE(r.has(name)) << name;
    EXPECT_EQ(r.info(name).kind, ProblemKind::kCycleRatio) << name;
  }
}

TEST(Registry, CreateReturnsMatchingSolver) {
  const auto& r = SolverRegistry::instance();
  for (const auto& name : r.all_names()) {
    const auto solver = r.create(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->name(), name);
    EXPECT_EQ(solver->kind(), r.info(name).kind);
  }
}

TEST(Registry, UnknownNameThrows) {
  const auto& r = SolverRegistry::instance();
  EXPECT_THROW((void)r.create("nope"), std::out_of_range);
  EXPECT_THROW((void)r.info("nope"), std::out_of_range);
  EXPECT_FALSE(r.has("nope"));
}

TEST(Registry, NamesFilteredByKind) {
  const auto& r = SolverRegistry::instance();
  const auto means = r.names(ProblemKind::kCycleMean);
  const auto ratios = r.names(ProblemKind::kCycleRatio);
  EXPECT_GE(means.size(), 10u);
  EXPECT_GE(ratios.size(), 4u);
  EXPECT_NE(std::find(means.begin(), means.end(), "karp"), means.end());
  EXPECT_EQ(std::find(ratios.begin(), ratios.end(), "karp"), ratios.end());
}

TEST(Registry, MetadataMatchesPaperTable1) {
  const auto& r = SolverRegistry::instance();
  EXPECT_EQ(r.info("karp").year, 1978);
  EXPECT_EQ(r.info("howard").source, "Cochet-Terrasson et al.");
  EXPECT_FALSE(r.info("lawler").exact);
  EXPECT_FALSE(r.info("oa1").exact);
  EXPECT_TRUE(r.info("yto").exact);
  EXPECT_EQ(r.info("yto").bound, "O(nm + n^2 lg n)");
}

TEST(Registry, DuplicateRegistrationThrows) {
  SolverRegistry local;
  register_all_solvers(local);
  SolverInfo dup;
  dup.name = "karp";
  EXPECT_THROW(local.add(dup, nullptr), std::invalid_argument);
}

TEST(Registry, HeapVariantsRegistered) {
  const auto& r = SolverRegistry::instance();
  for (const char* name : {"ko_bin", "ko_pair", "yto_bin", "yto_pair"}) {
    EXPECT_TRUE(r.has(name)) << name;
    EXPECT_FALSE(r.info(name).in_paper_table2) << name;
  }
}

}  // namespace
}  // namespace mcr
