#include "apps/retiming.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.h"
#include "support/prng.h"

namespace mcr::apps {
namespace {

// The classic Leiserson-Saxe correlator: host + 7 gates.
//   v0: host (delay 0), v1..v3: adders (delay 7), v4..v7: comparators (3).
// Registers on the "top row" arcs; the unretimed period is 24 and the
// optimal retimed period is 13 (Leiserson & Saxe 1991, Figs. 1 and 7).
struct Correlator {
  Graph graph;
  std::vector<std::int64_t> delay;
};

Correlator correlator() {
  GraphBuilder b(8);
  // top chain: host -> comparators with registers
  b.add_arc(0, 4, 1);  // host -> c1, 1 register
  b.add_arc(4, 5, 1);
  b.add_arc(5, 6, 1);
  b.add_arc(6, 7, 1);
  // bottom chain: adders, no registers
  b.add_arc(7, 3, 0);
  b.add_arc(3, 2, 0);
  b.add_arc(2, 1, 0);
  b.add_arc(1, 0, 0);
  // verticals: comparator k feeds the adder k steps from the host
  b.add_arc(4, 1, 0);
  b.add_arc(5, 2, 0);
  b.add_arc(6, 3, 0);
  Correlator c{b.build(), {0, 7, 7, 7, 3, 3, 3, 3}};
  return c;
}

TEST(Retiming, CorrelatorOriginalPeriodIs24) {
  const Correlator c = correlator();
  EXPECT_EQ(clock_period(c.graph, c.delay), 24);
}

TEST(Retiming, CorrelatorOptimalPeriodIs13) {
  const Correlator c = correlator();
  const RetimingResult r = min_period_retiming(c.graph, c.delay);
  EXPECT_EQ(r.period, 13);
}

TEST(Retiming, CorrelatorRetimingIsLegalAndAchievesPeriod) {
  const Correlator c = correlator();
  const RetimingResult r = min_period_retiming(c.graph, c.delay);
  for (const std::int64_t w : r.retimed_registers) EXPECT_GE(w, 0);
  const Graph retimed = apply_retiming(c.graph, r.labels);
  EXPECT_EQ(clock_period(retimed, c.delay), r.period);
}

TEST(Retiming, CycleRatioBoundHolds) {
  const Correlator c = correlator();
  const RetimingResult r = min_period_retiming(c.graph, c.delay);
  ASSERT_TRUE(r.has_cycle);
  // period >= delay(C)/registers(C) for every cycle.
  EXPECT_GE(Rational(r.period), r.cycle_ratio_bound);
}

TEST(Retiming, RetimingPreservesCycleRegisterCounts) {
  const Correlator c = correlator();
  const RetimingResult r = min_period_retiming(c.graph, c.delay);
  const Graph retimed = apply_retiming(c.graph, r.labels);
  // Telescoping: register count around any cycle is invariant. Check
  // total register count changes only via path boundary terms — on this
  // circuit, compare the one big cycle 0->4->5->6->7->3->2->1->0.
  std::int64_t before = 0;
  std::int64_t after = 0;
  for (const ArcId a : {0, 1, 2, 3, 4, 5, 6, 7}) {
    before += c.graph.weight(a);
    after += retimed.weight(a);
  }
  EXPECT_EQ(before, after);
}

TEST(Retiming, AlreadyOptimalCircuitKeepsPeriod) {
  // Balanced ring: every gate followed by a register; period = max delay.
  GraphBuilder b(3);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 2, 1);
  b.add_arc(2, 0, 1);
  const std::vector<std::int64_t> delay{5, 4, 3};
  const Graph g = b.build();
  EXPECT_EQ(clock_period(g, delay), 5);
  const RetimingResult r = min_period_retiming(g, delay);
  EXPECT_EQ(r.period, 5);
}

TEST(Retiming, PipelineCompressesToBottleneck) {
  // Chain with all registers bunched at the end: retiming spreads them.
  //   0 -(0)-> 1 -(0)-> 2 -(3)-> 3 ; feedback 3 -(1)-> 0
  GraphBuilder b(4);
  b.add_arc(0, 1, 0);
  b.add_arc(1, 2, 0);
  b.add_arc(2, 3, 3);
  b.add_arc(3, 0, 1);
  const std::vector<std::int64_t> delay{10, 10, 10, 10};
  const Graph g = b.build();
  EXPECT_EQ(clock_period(g, delay), 30);  // 0-1-2 register-free
  const RetimingResult r = min_period_retiming(g, delay);
  EXPECT_EQ(r.period, 10);  // one register between every pair
  const Graph retimed = apply_retiming(g, r.labels);
  EXPECT_EQ(clock_period(retimed, delay), 10);
}

TEST(Retiming, PeriodBelowOptimumIsInfeasible) {
  // The reported period is minimal: cycle bound forbids anything lower.
  GraphBuilder b(2);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 0, 1);
  const std::vector<std::int64_t> delay{6, 4};
  const RetimingResult r = min_period_retiming(b.build(), delay);
  // delay(C)/w(C) = 10/2 = 5, but a single gate needs 6.
  EXPECT_EQ(r.period, 6);
}

TEST(Retiming, CombinationalLoopThrows) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 0);
  b.add_arc(1, 0, 0);
  const std::vector<std::int64_t> delay{1, 1};
  EXPECT_THROW((void)clock_period(b.build(), delay), std::invalid_argument);
  EXPECT_THROW((void)min_period_retiming(b.build(), delay), std::invalid_argument);
}

TEST(Retiming, InputValidation) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 0, 1);
  const Graph g = b.build();
  EXPECT_THROW((void)clock_period(g, std::vector<std::int64_t>{1}),
               std::invalid_argument);
  EXPECT_THROW((void)clock_period(g, std::vector<std::int64_t>{1, -2}),
               std::invalid_argument);
  GraphBuilder neg(2);
  neg.add_arc(0, 1, -1);
  neg.add_arc(1, 0, 1);
  EXPECT_THROW((void)clock_period(neg.build(), std::vector<std::int64_t>{1, 1}),
               std::invalid_argument);
}

TEST(Retiming, ApplyRetimingRejectsIllegalLabels) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 0);
  b.add_arc(1, 0, 2);
  const Graph g = b.build();
  // r = {1, 0} makes arc 0 have -1 registers.
  EXPECT_THROW((void)apply_retiming(g, std::vector<std::int64_t>{1, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)apply_retiming(g, std::vector<std::int64_t>{0}),
               std::invalid_argument);
}

TEST(Retiming, RandomizedPipelinesAreOptimallyRetimed) {
  // Random ring circuits: optimal period must equal
  // max(max gate delay, feasibility at the cycle bound checked by
  // construction through the binary search) and retimed circuits must
  // achieve it.
  Prng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId n = static_cast<NodeId>(rng.uniform_int(3, 12));
    GraphBuilder b(n);
    std::vector<std::int64_t> delay(static_cast<std::size_t>(n));
    std::int64_t total_regs = 0;
    for (NodeId v = 0; v < n; ++v) {
      delay[static_cast<std::size_t>(v)] = rng.uniform_int(1, 20);
      const std::int64_t regs = rng.uniform_int(0, 2);
      total_regs += regs;
      b.add_arc(v, (v + 1) % n, regs);
    }
    if (total_regs == 0) continue;  // combinational loop; skip
    const Graph g = b.build();
    const RetimingResult r = min_period_retiming(g, delay);
    const Graph retimed = apply_retiming(g, r.labels);
    EXPECT_EQ(clock_period(retimed, delay), r.period);
    EXPECT_LE(r.period, clock_period(g, delay));
    EXPECT_GE(Rational(r.period), r.cycle_ratio_bound);
  }
}

}  // namespace
}  // namespace mcr::apps
