// Tests for the fault-tolerant fleet front-end (svc::Router): backend
// address parsing, the deterministic clock-passed circuit breaker, the
// consistent-hash ring with replication, routing-key canonicalization,
// and a live router over real in-process mcr_serve workers — failover
// on worker death with zero client-visible errors, breaker open /
// probe-driven re-close, LOAD fan-out to the replica set, STATS
// fan-in, and a mixed-verb concurrency hammer (runs under TSan in CI).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "graph/fingerprint.h"
#include "graph/io.h"
#include "obs/metrics.h"
#include "support/json.h"
#include "svc/client.h"
#include "svc/errors.h"
#include "svc/protocol.h"
#include "svc/router.h"
#include "svc/server.h"

namespace {

using namespace mcr;
using namespace std::chrono_literals;

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/mcr_router_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

Graph make_ring(NodeId n, std::int64_t base_weight) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    b.add_arc(u, (u + 1) % n, base_weight + u);
  }
  return b.build();
}

std::string dimacs_text(const Graph& g) {
  std::ostringstream os;
  write_dimacs(os, g, "test_router");
  return os.str();
}

// ---------------------------------------------------------------------------
// Backend address parsing.

TEST(BackendAddress, ParsesUnixTcpAndBarePortForms) {
  const svc::BackendAddress u = svc::parse_backend_address("unix:/tmp/w1.sock");
  EXPECT_EQ(u.kind, svc::BackendAddress::Kind::kUnix);
  EXPECT_EQ(u.path, "/tmp/w1.sock");
  EXPECT_EQ(u.name, "unix:/tmp/w1.sock");

  const svc::BackendAddress t = svc::parse_backend_address("10.0.0.7:9301");
  EXPECT_EQ(t.kind, svc::BackendAddress::Kind::kTcp);
  EXPECT_EQ(t.host, "10.0.0.7");
  EXPECT_EQ(t.port, 9301);
  EXPECT_EQ(t.name, "10.0.0.7:9301");

  const svc::BackendAddress p = svc::parse_backend_address("9301");
  EXPECT_EQ(p.kind, svc::BackendAddress::Kind::kTcp);
  EXPECT_EQ(p.host, "127.0.0.1");
  EXPECT_EQ(p.port, 9301);
}

TEST(BackendAddress, RejectsMalformedSpecs) {
  EXPECT_THROW((void)svc::parse_backend_address(""), std::invalid_argument);
  EXPECT_THROW((void)svc::parse_backend_address("unix:"), std::invalid_argument);
  EXPECT_THROW((void)svc::parse_backend_address("host:notaport"),
               std::invalid_argument);
  EXPECT_THROW((void)svc::parse_backend_address("host:70000"),
               std::invalid_argument);
  EXPECT_THROW((void)svc::parse_backend_address(":9301"), std::invalid_argument);
  // Port 0 is only meaningful for listeners (ephemeral bind).
  EXPECT_THROW((void)svc::parse_backend_address("127.0.0.1:0"),
               std::invalid_argument);
  EXPECT_EQ(svc::parse_backend_address("127.0.0.1:0", /*allow_port_zero=*/true).port,
            0);
}

// ---------------------------------------------------------------------------
// Circuit breaker: pure state machine, clock passed in — no sleeps.

using Clock = std::chrono::steady_clock;

TEST(CircuitBreaker, OpensAtThresholdAndRefusesDuringCooldown) {
  svc::CircuitBreaker::Options o;
  o.failure_threshold = 3;
  o.cooldown_initial_ms = 100.0;
  svc::CircuitBreaker cb(o);
  const auto t0 = Clock::now();

  EXPECT_EQ(cb.state(), svc::CircuitBreaker::State::kClosed);
  cb.on_failure(t0);
  cb.on_failure(t0);
  EXPECT_EQ(cb.state(), svc::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.admit(t0));  // two failures: still closed, still admitting
  cb.on_failure(t0);          // third consecutive failure trips it
  EXPECT_EQ(cb.state(), svc::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.admit(t0));
  EXPECT_FALSE(cb.admit(t0 + 1ms));  // jitter floor is 0.5 * nominal
  EXPECT_EQ(cb.current_cooldown_ms(), 100.0);
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveFailureCount) {
  svc::CircuitBreaker cb(svc::CircuitBreaker::Options{});  // threshold 3
  const auto t0 = Clock::now();
  cb.on_failure(t0);
  cb.on_failure(t0);
  cb.on_success();  // a success between failures means they are not consecutive
  cb.on_failure(t0);
  cb.on_failure(t0);
  EXPECT_EQ(cb.state(), svc::CircuitBreaker::State::kClosed);
  EXPECT_EQ(cb.consecutive_failures(), 2);
}

TEST(CircuitBreaker, HalfOpenAdmitsOneTrialThenReclosesOrReopens) {
  svc::CircuitBreaker::Options o;
  o.failure_threshold = 1;
  o.cooldown_initial_ms = 100.0;
  o.cooldown_max_ms = 1000.0;
  svc::CircuitBreaker cb(o);
  const auto t0 = Clock::now();
  cb.on_failure(t0);
  ASSERT_EQ(cb.state(), svc::CircuitBreaker::State::kOpen);

  // Past the jitter ceiling (1.0 * nominal) the breaker half-opens and
  // admits exactly one trial; concurrent admits are refused until the
  // trial reports.
  const auto after = t0 + 101ms;
  EXPECT_TRUE(cb.admit(after));
  EXPECT_EQ(cb.state(), svc::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(cb.admit(after));

  cb.on_success();
  EXPECT_EQ(cb.state(), svc::CircuitBreaker::State::kClosed);
  EXPECT_EQ(cb.consecutive_failures(), 0);
  EXPECT_TRUE(cb.admit(after));

  // Trip again, fail the half-open trial: the nominal cooldown doubles.
  cb.on_failure(after);
  ASSERT_EQ(cb.state(), svc::CircuitBreaker::State::kOpen);
  const auto again = after + 101ms;
  EXPECT_TRUE(cb.admit(again));
  cb.on_failure(again);
  EXPECT_EQ(cb.state(), svc::CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.current_cooldown_ms(), 200.0);
}

TEST(CircuitBreaker, CooldownDoublingIsCappedAtTheMaximum) {
  svc::CircuitBreaker::Options o;
  o.failure_threshold = 1;
  o.cooldown_initial_ms = 100.0;
  o.cooldown_max_ms = 250.0;
  svc::CircuitBreaker cb(o);
  auto t = Clock::now();
  cb.on_failure(t);
  for (int i = 0; i < 5; ++i) {
    t += 10s;  // far past any cooldown: half-open, then fail the trial
    ASSERT_TRUE(cb.admit(t));
    cb.on_failure(t);
  }
  EXPECT_EQ(cb.current_cooldown_ms(), 250.0);  // 100 -> 200 -> capped
}

// ---------------------------------------------------------------------------
// Ring + routing keys. A stopped Router still answers the pure helpers.

svc::RouterOptions three_worker_options() {
  svc::RouterOptions ro;
  ro.workers.push_back(svc::parse_backend_address("unix:/tmp/ring_a.sock"));
  ro.workers.push_back(svc::parse_backend_address("unix:/tmp/ring_b.sock"));
  ro.workers.push_back(svc::parse_backend_address("unix:/tmp/ring_c.sock"));
  ro.replicas = 2;
  return ro;
}

TEST(HashRing, SameKeySameReplicaSetAndReplicasAreDistinct) {
  svc::Router router(three_worker_options());
  for (const std::string key : {"fp:abc", "fp:def", "gen:{seed:1}", "x"}) {
    const auto a = router.replica_indices(key);
    const auto b = router.replica_indices(key);
    EXPECT_EQ(a, b) << key;  // deterministic
    ASSERT_EQ(a.size(), 2u) << key;
    EXPECT_NE(a[0], a[1]) << key;  // replicas are distinct workers
  }
}

TEST(HashRing, ReplicationFactorIsClampedToTheFleetSize) {
  svc::RouterOptions ro = three_worker_options();
  ro.replicas = 8;
  svc::Router router(std::move(ro));
  const auto set = router.replica_indices("fp:abc");
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(std::set<std::size_t>(set.begin(), set.end()).size(), 3u);
}

TEST(HashRing, KeysSpreadAcrossTheWholeFleet) {
  svc::Router router(three_worker_options());
  std::vector<std::size_t> primaries(3, 0);
  for (int i = 0; i < 300; ++i) {
    const auto set = router.replica_indices("fp:" + std::to_string(i));
    ASSERT_FALSE(set.empty());
    ++primaries[set[0]];
  }
  // With 64 vnodes per worker no backend should be starved or own
  // (nearly) everything.
  for (const std::size_t count : primaries) {
    EXPECT_GT(count, 30u);
    EXPECT_LT(count, 200u);
  }
}

TEST(RoutingKey, DeclaredFingerprintWinsAndGeneratorSpecIsCanonical) {
  const json::Value by_fp = json::parse(
      R"({"verb":"SOLVE","fingerprint":"abc123","generator":{"family":"ring"}})");
  EXPECT_EQ(svc::Router::routing_key_for(by_fp), "fp:abc123");

  // Logically-equal specs produce the same key regardless of the JSON
  // text's key order or number spelling (1e3 == 1000).
  const json::Value spec_a = json::parse(
      R"({"verb":"SOLVE","generator":{"family":"sprand","nodes":1000,"seed":7}})");
  const json::Value spec_b = json::parse(
      R"({"verb":"SOLVE","generator":{"seed":7,"nodes":1e3,"family":"sprand"}})");
  const std::string key_a = svc::Router::routing_key_for(spec_a);
  EXPECT_EQ(key_a, svc::Router::routing_key_for(spec_b));
  EXPECT_EQ(key_a.rfind("gen:", 0), 0u);

  // A different spec is a different key.
  const json::Value spec_c = json::parse(
      R"({"verb":"SOLVE","generator":{"seed":8,"nodes":1000,"family":"sprand"}})");
  EXPECT_NE(key_a, svc::Router::routing_key_for(spec_c));

  EXPECT_EQ(svc::Router::routing_key_for(json::parse(R"({"verb":"PING"})")), "");
}

TEST(RoutingKey, DimacsContentRoutesByTheGraphFingerprint) {
  // The router computes the same content fingerprint the worker will
  // mint on LOAD, so LOAD-by-dimacs and the later SOLVE-by-fingerprint
  // agree on the replica set.
  const Graph g = make_ring(16, 3);
  const json::Value load = json::parse(
      R"({"verb":"LOAD","dimacs":")" + svc::json_escape(dimacs_text(g)) + "\"}");
  EXPECT_EQ(svc::Router::routing_key_for(load), "fp:" + fingerprint_hex(g));

  // Malformed DIMACS still yields a stable (content-hash) key; a worker
  // owns the BAD_REQUEST.
  const json::Value bad =
      json::parse(R"({"verb":"LOAD","dimacs":"p nonsense"})");
  const std::string bad_key = svc::Router::routing_key_for(bad);
  EXPECT_EQ(bad_key.rfind("dimacs:", 0), 0u);
  EXPECT_EQ(bad_key, svc::Router::routing_key_for(bad));
}

// ---------------------------------------------------------------------------
// Live fleet: a router over real in-process workers.

/// Three workers on unix sockets plus a router in front, probes driven
/// manually (probe_interval_ms = 0) so tests are deterministic.
struct Fleet {
  explicit Fleet(std::size_t n, svc::RouterOptions ro = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      svc::ServerOptions so;
      so.unix_socket_path = unique_socket_path();
      workers.push_back(std::make_unique<svc::Server>(so));
      workers.back()->start();
      worker_paths.push_back(so.unix_socket_path);
      ro.workers.push_back(svc::parse_backend_address("unix:" + so.unix_socket_path));
    }
    ro.unix_socket_path = unique_socket_path();
    ro.probe_interval_ms = 0.0;  // tests call probe_now() by hand
    router_path = ro.unix_socket_path;
    router = std::make_unique<svc::Router>(std::move(ro));
    router->start();
  }

  ~Fleet() {
    if (router != nullptr) router->stop_and_drain();
    for (auto& w : workers) {
      if (w != nullptr) w->stop_and_drain();
    }
  }

  [[nodiscard]] svc::Client client() const {
    return svc::Client::connect_unix(router_path);
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) {
    return router->metrics().counter(name).value();
  }

  std::vector<std::unique_ptr<svc::Server>> workers;
  std::vector<std::string> worker_paths;
  std::string router_path;
  std::unique_ptr<svc::Router> router;
};

TEST(RouterFleet, LoadFansOutToReplicasAndFingerprintSolvesAreAffine) {
  Fleet fleet(3);
  svc::Client client = fleet.client();
  EXPECT_TRUE(client.ping());

  const Graph g = make_ring(24, 5);
  const std::string fp = client.load_dimacs_text(dimacs_text(g));
  EXPECT_EQ(fp, fingerprint_hex(g));

  // The LOAD fanned out to every replica of the fingerprint's set: a
  // direct (router-bypassing) SOLVE against each replica worker finds
  // the graph resident.
  const auto replicas = fleet.router->replica_indices("fp:" + fp);
  ASSERT_EQ(replicas.size(), 2u);
  for (const std::size_t idx : replicas) {
    svc::Client direct = svc::Client::connect_unix(fleet.worker_paths[idx]);
    EXPECT_EQ(direct.solve(fp).string_or("status", ""), "ok")
        << "replica " << idx << " does not hold " << fp;
  }

  // Through the router the SOLVE routes to that same set.
  const json::Value r = client.solve(fp);
  EXPECT_EQ(r.string_or("status", ""), "ok");
  EXPECT_EQ(r.string_or("fingerprint", ""), fp);
}

TEST(RouterFleet, WorkerDeathFailsOverWithZeroClientVisibleErrors) {
  Fleet fleet(3);
  svc::Client client = fleet.client();
  const Graph g = make_ring(24, 5);
  const std::string fp = client.load_dimacs_text(dimacs_text(g));
  const auto replicas = fleet.router->replica_indices("fp:" + fp);
  ASSERT_EQ(replicas.size(), 2u);

  // Kill the PRIMARY replica: the next fingerprint-addressed SOLVE hits
  // its corpse first and must fail over to the surviving replica.
  fleet.workers[replicas[0]]->stop_and_drain();
  for (int i = 0; i < 8; ++i) {
    const json::Value r = client.solve(fp);
    EXPECT_EQ(r.string_or("status", ""), "ok") << "request " << i;
  }
  EXPECT_GT(fleet.counter("mcr_router_failovers_total"), 0u);
  EXPECT_EQ(fleet.counter("mcr_router_no_replica_total"), 0u);
}

TEST(RouterFleet, BreakerOpensOnRepeatedFailureAndProbeRecloses) {
  svc::RouterOptions ro;
  ro.breaker.failure_threshold = 2;
  ro.breaker.cooldown_initial_ms = 1.0;  // expire instantly for the test
  ro.breaker.cooldown_max_ms = 1.0;
  Fleet fleet(2, std::move(ro));
  svc::Client client = fleet.client();
  const Graph g = make_ring(24, 5);
  const std::string fp = client.load_dimacs_text(dimacs_text(g));
  const auto replicas = fleet.router->replica_indices("fp:" + fp);
  ASSERT_EQ(replicas.size(), 2u);
  const std::size_t victim = replicas[0];
  const std::string victim_path = fleet.worker_paths[victim];

  fleet.workers[victim]->stop_and_drain();
  for (int i = 0; i < 6; ++i) {
    const json::Value r = client.solve(fp);
    EXPECT_EQ(r.string_or("status", ""), "ok")
        << i << ": " << r.string_or("code", "") << ": "
        << r.string_or("message", "");
  }
  {
    const auto snap = fleet.router->backend_snapshots();
    EXPECT_FALSE(snap[victim].up);
    EXPECT_GT(snap[victim].failures, 0u);
  }
  EXPECT_GT(fleet.counter("mcr_router_breaker_opens_total"), 0u);
  EXPECT_EQ(fleet.router->metrics()
                .gauge(obs::labeled_name("mcr_router_backend_up",
                                         {{"worker", "unix:" + victim_path}}))
                .value(),
            0);

  // Restart a worker on the same socket path. The breaker's cooldown
  // (1ms) has long expired, so the next probe is the half-open trial:
  // it succeeds and re-closes the breaker.
  svc::ServerOptions so;
  so.unix_socket_path = victim_path;
  svc::Server revived(so);
  revived.start();
  std::this_thread::sleep_for(5ms);
  fleet.router->probe_now();
  {
    const auto snap = fleet.router->backend_snapshots();
    EXPECT_TRUE(snap[victim].up);
    EXPECT_EQ(snap[victim].breaker, svc::CircuitBreaker::State::kClosed);
  }
  EXPECT_GT(fleet.counter("mcr_router_backend_recoveries_total"), 0u);

  // The revived primary is a fresh process: it lost graph residency, so
  // the fingerprint-addressed SOLVE surfaces its NOT_FOUND verbatim
  // (permanent errors never fail over — the contract is "LOAD again").
  EXPECT_EQ(client.solve(fp).string_or("code", ""), "NOT_FOUND");
  ASSERT_EQ(client.load_dimacs_text(dimacs_text(g)), fp);  // re-fan-out
  EXPECT_EQ(client.solve(fp).string_or("status", ""), "ok");
  revived.stop_and_drain();
}

TEST(RouterFleet, AllReplicasDownYieldsRetryableUpstreamUnavailable) {
  svc::RouterOptions ro;
  ro.max_attempts = 4;
  Fleet fleet(2, std::move(ro));
  svc::Client client = fleet.client();
  const Graph g = make_ring(24, 5);
  const std::string fp = client.load_dimacs_text(dimacs_text(g));
  for (auto& w : fleet.workers) w->stop_and_drain();

  const json::Value r = client.solve(fp);
  EXPECT_EQ(r.string_or("status", ""), "error");
  EXPECT_EQ(r.string_or("code", ""), svc::kErrUpstream);
  // The router's verdict is explicitly retryable: the caller's backoff
  // machinery (mcr_query --retry) can keep trying a healing fleet.
  EXPECT_TRUE(svc::ServiceError::is_retryable_code(r.string_or("code", "")));
  EXPECT_GT(fleet.counter("mcr_router_no_replica_total"), 0u);
}

TEST(RouterFleet, StatsReportsBackendsAndFanoutEmbedsWorkerStats) {
  Fleet fleet(3);
  svc::Client client = fleet.client();
  EXPECT_TRUE(client.ping());

  const json::Value stats = client.request(R"({"verb":"STATS"})");
  ASSERT_EQ(stats.string_or("status", ""), "ok");
  EXPECT_EQ(stats.string_or("service", ""), "mcr_router");
  ASSERT_TRUE(stats.has("backends"));
  EXPECT_EQ(stats.at("backends").as_array().size(), 3u);
  for (const json::Value& b : stats.at("backends").as_array()) {
    EXPECT_TRUE(b.at("up").as_bool());
    EXPECT_EQ(b.string_or("breaker", ""), "closed");
  }
  // The router serves the same Prometheus contract as a worker.
  EXPECT_TRUE(stats.has("prometheus"));
  const std::string prom = stats.at("prometheus").as_string();
  EXPECT_NE(prom.find("mcr_router_backend_up"), std::string::npos);
  EXPECT_NE(prom.find("mcr_router_failovers_total"), std::string::npos);

  const json::Value fanout = client.request(R"({"verb":"STATS","fanout":true})");
  ASSERT_EQ(fanout.string_or("status", ""), "ok");
  ASSERT_TRUE(fanout.has("workers"));
  EXPECT_EQ(fanout.at("workers").as_object().size(), 3u);
  for (const auto& [name, worker_stats] : fanout.at("workers").as_object()) {
    EXPECT_EQ(worker_stats.string_or("status", ""), "ok") << name;
  }
}

TEST(RouterFleet, HealthSummarizesTheFleetAndTracksProbes) {
  Fleet fleet(2);
  svc::Client client = fleet.client();
  json::Value h = client.health();
  ASSERT_EQ(h.string_or("status", ""), "ok");
  EXPECT_TRUE(h.at("healthy").as_bool());
  EXPECT_EQ(h.at("backends_total").as_double(), 2.0);
  EXPECT_EQ(h.at("backends_up").as_double(), 2.0);

  // Probes notice worker death without any client traffic.
  fleet.workers[0]->stop_and_drain();
  fleet.workers[1]->stop_and_drain();
  for (int i = 0; i < 4; ++i) fleet.router->probe_now();
  h = client.health();
  EXPECT_FALSE(h.at("healthy").as_bool());
  EXPECT_EQ(h.at("backends_up").as_double(), 0.0);
}

TEST(RouterFleet, TraceContextIsMintedAndClientIdsPropagate) {
  Fleet fleet(2);
  svc::Client client = fleet.client();
  // Router mints an id when the client sent none.
  const json::Value minted = client.request(R"({"verb":"PING"})");
  EXPECT_FALSE(minted.string_or("trace_id", "").empty());
  // A caller-chosen id survives the hop to the worker and back.
  const json::Value echoed =
      client.request(R"({"verb":"PING","trace_id":"feedfacefeedface"})");
  EXPECT_EQ(echoed.string_or("trace_id", ""), "feedfacefeedface");
}

TEST(RouterFleet, ExpiredDeadlineDoesNotLeakTheHalfOpenTrial) {
  svc::RouterOptions ro;
  ro.breaker.failure_threshold = 1;
  ro.breaker.cooldown_initial_ms = 1.0;  // expire instantly for the test
  ro.breaker.cooldown_max_ms = 1.0;
  Fleet fleet(2, std::move(ro));
  svc::Client client = fleet.client();
  const Graph g = make_ring(24, 5);
  const std::string fp = client.load_dimacs_text(dimacs_text(g));
  const auto replicas = fleet.router->replica_indices("fp:" + fp);
  ASSERT_EQ(replicas.size(), 2u);
  const std::size_t victim = replicas[0];
  const std::string victim_path = fleet.worker_paths[victim];

  // One transport failure (threshold 1) opens the victim's breaker.
  fleet.workers[victim]->stop_and_drain();
  EXPECT_EQ(client.solve(fp).string_or("status", ""), "ok");  // failover
  ASSERT_EQ(fleet.router->backend_snapshots()[victim].breaker,
            svc::CircuitBreaker::State::kOpen);

  // Past the 1ms cooldown an already-expired request arrives. It must
  // be refused BEFORE the breaker is consulted: admit() on an expired
  // open breaker consumes the half-open state's single trial slot, and
  // an attempt abandoned on the deadline early-return would never
  // report back — wedging the breaker half-open so that no probe (the
  // prober goes through admit() too) could ever re-close it.
  std::this_thread::sleep_for(5ms);
  const json::Value r = client.request(
      R"({"verb":"SOLVE","fingerprint":")" + fp + R"(","deadline_ms":0.000001})");
  EXPECT_EQ(r.string_or("code", ""), svc::kErrDeadline);

  // The revived worker must be re-admittable: the next probe is the
  // half-open trial and re-closes the breaker.
  svc::ServerOptions so;
  so.unix_socket_path = victim_path;
  svc::Server revived(so);
  revived.start();
  std::this_thread::sleep_for(5ms);
  fleet.router->probe_now();
  const auto snap = fleet.router->backend_snapshots();
  EXPECT_TRUE(snap[victim].up);
  EXPECT_EQ(snap[victim].breaker, svc::CircuitBreaker::State::kClosed);
  revived.stop_and_drain();
}

TEST(RouterFleet, StalePooledConnectionsDoNotFeedTheBreaker) {
  svc::RouterOptions ro;
  ro.breaker.failure_threshold = 1;  // one counted failure would open a breaker
  Fleet fleet(2, std::move(ro));
  svc::Client client = fleet.client();
  const Graph g = make_ring(24, 5);
  // The LOAD fan-out parks one pooled upstream connection per replica.
  const std::string fp = client.load_dimacs_text(dimacs_text(g));
  EXPECT_EQ(client.solve(fp).string_or("status", ""), "ok");

  // Restart every worker in place: the pooled connections all went
  // stale with the old processes, while the fleet itself is healthy.
  for (std::size_t i = 0; i < fleet.workers.size(); ++i) {
    fleet.workers[i]->stop_and_drain();
    svc::ServerOptions so;
    so.unix_socket_path = fleet.worker_paths[i];
    fleet.workers[i] = std::make_unique<svc::Server>(so);
    fleet.workers[i]->start();
  }

  // The next requests ride (and discard) the stale pool entries; each
  // must be retried on a fresh dial without the breaker hearing about
  // it. With failure_threshold = 1 a single miscounted failure would
  // open a breaker and sink this LOAD fan-out.
  EXPECT_EQ(client.load_dimacs_text(dimacs_text(g)), fp);
  EXPECT_EQ(client.solve(fp).string_or("status", ""), "ok");
  for (const auto& snap : fleet.router->backend_snapshots()) {
    EXPECT_TRUE(snap.up) << snap.name;
    EXPECT_EQ(snap.breaker, svc::CircuitBreaker::State::kClosed) << snap.name;
    EXPECT_EQ(snap.failures, 0u) << snap.name;
  }
}

TEST(RouterStart, PartialStartFailureLeavesNoListenerResidue) {
  // Occupy a TCP port so the second router's TCP bind fails after its
  // unix listener has already bound.
  svc::RouterOptions holder_opts;
  holder_opts.workers.push_back(svc::parse_backend_address("unix:/tmp/w_none.sock"));
  holder_opts.unix_socket_path = unique_socket_path();
  holder_opts.tcp_port = 0;  // ephemeral
  holder_opts.probe_interval_ms = 0.0;
  svc::Router holder(std::move(holder_opts));
  holder.start();
  ASSERT_GT(holder.tcp_port(), 0);

  svc::RouterOptions ro;
  ro.workers.push_back(svc::parse_backend_address("unix:/tmp/w_none.sock"));
  ro.unix_socket_path = unique_socket_path();
  ro.tcp_port = holder.tcp_port();  // taken: bind must fail
  ro.probe_interval_ms = 0.0;
  const std::string path = ro.unix_socket_path;
  svc::Router router(std::move(ro));
  EXPECT_THROW(router.start(), std::runtime_error);
  // The partially-built listeners were torn down: no orphaned socket
  // file (which would shadow a later bind as "stale"), not running.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
  EXPECT_FALSE(router.running());

  // And the same router starts cleanly once the conflict clears.
  holder.stop_and_drain();
  router.start();
  EXPECT_TRUE(router.running());
  EXPECT_EQ(::access(path.c_str(), F_OK), 0);
  router.stop_and_drain();
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(RouterFleet, DrainingWorkerGetsNoNewRequests) {
  Fleet fleet(2);
  svc::Client client = fleet.client();
  const Graph g = make_ring(24, 5);
  const std::string fp = client.load_dimacs_text(dimacs_text(g));

  // A drained worker refuses its socket; requests that would have
  // landed there fail over and succeed elsewhere, silently.
  fleet.workers[0]->stop_and_drain();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(client.solve(fp).string_or("status", ""), "ok");
  }
}

// The TSan target: mixed verbs from many threads while a worker dies
// and the prober runs concurrently. Every response must be a complete,
// parseable frame (ok or a typed error) — no torn state, no crashes.
TEST(RouterFleet, ConcurrentMixedVerbsSurviveWorkerLoss) {
  svc::RouterOptions ro;
  ro.probe_interval_ms = 5.0;  // a real prober thread races the traffic
  Fleet fleet(3, std::move(ro));
  svc::Client setup = fleet.client();
  const Graph g = make_ring(24, 5);
  const std::string fp = setup.load_dimacs_text(dimacs_text(g));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 24;
  std::atomic<int> malformed{0};
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      svc::Client c = svc::Client::connect_unix(fleet.router_path);
      started.fetch_add(1);
      for (int i = 0; i < kPerThread; ++i) {
        try {
          json::Value r;
          switch ((t + i) % 4) {
            case 0:
              r = c.request(R"({"verb":"PING"})");
              break;
            case 1:
              r = c.solve(fp);
              break;
            case 2:
              r = c.request(R"({"verb":"STATS"})");
              break;
            default:
              r = c.health();
              break;
          }
          const std::string status = r.string_or("status", "");
          if (status != "ok" && status != "error") malformed.fetch_add(1);
        } catch (const svc::TransportError&) {
          // The router itself never dies in this test; a transport error
          // here would be a torn client connection — count it.
          malformed.fetch_add(1);
        }
      }
    });
  }
  while (started.load() < kThreads) std::this_thread::sleep_for(1ms);
  std::this_thread::sleep_for(10ms);
  fleet.workers[1]->stop_and_drain();  // chaos mid-traffic
  for (auto& th : threads) th.join();
  EXPECT_EQ(malformed.load(), 0);
}

}  // namespace
