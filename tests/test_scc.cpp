#include "graph/scc.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/structured.h"
#include "graph/builder.h"
#include "graph/traversal.h"
#include "support/prng.h"

namespace mcr {
namespace {

TEST(Scc, SingleNodeNoArc) {
  const Graph g(1, {});
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_FALSE(scc.component_is_cyclic[0]);
}

TEST(Scc, SingleNodeSelfLoop) {
  GraphBuilder b(1);
  b.add_arc(0, 0, 1);
  const SccDecomposition scc = strongly_connected_components(b.build());
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_TRUE(scc.component_is_cyclic[0]);
}

TEST(Scc, RingIsOneComponent) {
  const Graph g = gen::ring({1, 2, 3, 4});
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1);
  EXPECT_TRUE(scc.component_is_cyclic[0]);
}

TEST(Scc, PathIsAllSingletons) {
  const Graph g = gen::path(5);
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 5);
  for (NodeId c = 0; c < 5; ++c) EXPECT_FALSE(scc.component_is_cyclic[static_cast<std::size_t>(c)]);
}

TEST(Scc, TwoCyclesJoinedByBridge) {
  // 0<->1   2<->3, bridge 1->2.
  GraphBuilder b(4);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 0, 1);
  b.add_arc(2, 3, 1);
  b.add_arc(3, 2, 1);
  b.add_arc(1, 2, 1);
  const SccDecomposition scc = strongly_connected_components(b.build());
  EXPECT_EQ(scc.num_components, 2);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
  EXPECT_TRUE(scc.component_is_cyclic[static_cast<std::size_t>(scc.component[0])]);
  EXPECT_TRUE(scc.component_is_cyclic[static_cast<std::size_t>(scc.component[2])]);
}

TEST(Scc, ComponentsInReverseTopologicalOrder) {
  // Tarjan numbers sink components first: with arc A -> B, component(B)
  // is numbered before component(A).
  GraphBuilder b(2);
  b.add_arc(0, 1, 1);
  const SccDecomposition scc = strongly_connected_components(b.build());
  EXPECT_LT(scc.component[1], scc.component[0]);
}

TEST(Scc, SccChainStructure) {
  const Graph g = gen::scc_chain(4, 3, 1, 5, 99);
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 4);
  for (NodeId c = 0; c < 4; ++c) {
    EXPECT_TRUE(scc.component_is_cyclic[static_cast<std::size_t>(c)]);
  }
}

TEST(Scc, IsStronglyConnected) {
  EXPECT_TRUE(is_strongly_connected(gen::ring({1, 2, 3})));
  EXPECT_FALSE(is_strongly_connected(gen::path(3)));
  EXPECT_FALSE(is_strongly_connected(Graph(0, {})));
}

TEST(Scc, InducedSubgraphMapsBack) {
  GraphBuilder b(4);
  b.add_arc(0, 1, 10);
  b.add_arc(1, 0, 20);
  b.add_arc(1, 2, 30);  // bridge out of the component
  b.add_arc(2, 3, 40);
  b.add_arc(3, 2, 50);
  const Graph g = b.build();
  const SccDecomposition scc = strongly_connected_components(g);
  const NodeId c01 = scc.component[0];
  const InducedSubgraph sub = induced_subgraph(g, scc, c01);
  EXPECT_EQ(sub.graph.num_nodes(), 2);
  EXPECT_EQ(sub.graph.num_arcs(), 2);
  // Arc weights map back to parents.
  std::set<std::int64_t> weights;
  for (ArcId a = 0; a < sub.graph.num_arcs(); ++a) {
    weights.insert(sub.graph.weight(a));
    const ArcId pa = sub.to_parent_arc[static_cast<std::size_t>(a)];
    EXPECT_EQ(g.weight(pa), sub.graph.weight(a));
  }
  EXPECT_EQ(weights, (std::set<std::int64_t>{10, 20}));
  for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
    EXPECT_EQ(scc.component[static_cast<std::size_t>(
                  sub.to_parent_node[static_cast<std::size_t>(v)])],
              c01);
  }
}

TEST(Scc, DeepChainDoesNotOverflowStack) {
  // 200k-node cycle: recursion would die; the iterative version must not.
  const NodeId n = 200000;
  std::vector<ArcSpec> arcs;
  arcs.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    arcs.push_back(ArcSpec{v, (v + 1) % n, 1, 1});
  }
  const Graph g(n, arcs);
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 1);
}

TEST(Scc, RandomGraphAgreesWithReachabilityDefinition) {
  // Brute-force definition: u ~ v iff reachable both ways.
  Prng rng(5);
  GraphBuilder b(30);
  for (int i = 0; i < 60; ++i) {
    b.add_arc(static_cast<NodeId>(rng.uniform_int(0, 29)),
              static_cast<NodeId>(rng.uniform_int(0, 29)), 1);
  }
  const Graph g = b.build();
  const SccDecomposition scc = strongly_connected_components(g);
  std::vector<std::vector<bool>> reach;
  for (NodeId v = 0; v < 30; ++v) reach.push_back(reachable_from(g, v));
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId v = 0; v < 30; ++v) {
      const bool same = scc.component[static_cast<std::size_t>(u)] ==
                        scc.component[static_cast<std::size_t>(v)];
      const bool mutual = reach[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] &&
                          reach[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)];
      EXPECT_EQ(same, mutual) << "nodes " << u << ", " << v;
    }
  }
}

TEST(Condensation, IsAcyclicAndReverseTopological) {
  const Graph g = gen::scc_chain(4, 3, 1, 9, 7);
  const SccDecomposition scc = strongly_connected_components(g);
  const Condensation c = condensation(g, scc);
  EXPECT_EQ(c.graph.num_nodes(), 4);
  EXPECT_EQ(c.graph.num_arcs(), 3);  // the three bridges
  EXPECT_FALSE(has_cycle(c.graph));
  for (ArcId a = 0; a < c.graph.num_arcs(); ++a) {
    EXPECT_GT(c.graph.src(a), c.graph.dst(a));  // reverse topo numbering
  }
}

TEST(Condensation, PreservesArcAttributesAndMapsBack) {
  GraphBuilder b(4);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 0, 1);
  const ArcId bridge = b.add_arc(1, 2, 42, 7);
  b.add_arc(2, 3, 1);
  b.add_arc(3, 2, 1);
  const Graph g = b.build();
  const SccDecomposition scc = strongly_connected_components(g);
  const Condensation c = condensation(g, scc);
  ASSERT_EQ(c.graph.num_arcs(), 1);
  EXPECT_EQ(c.graph.weight(0), 42);
  EXPECT_EQ(c.graph.transit(0), 7);
  EXPECT_EQ(c.to_parent_arc[0], bridge);
}

TEST(Condensation, StronglyConnectedGraphCondensesToOneNode) {
  const Graph g = gen::ring({1, 2, 3});
  const SccDecomposition scc = strongly_connected_components(g);
  const Condensation c = condensation(g, scc);
  EXPECT_EQ(c.graph.num_nodes(), 1);
  EXPECT_EQ(c.graph.num_arcs(), 0);
}

}  // namespace
}  // namespace mcr
