// The self-timed simulator is the operational ground truth: its
// measured steady-state rates must converge to the analytic cycle-time
// vector computed by the MCR machinery.
#include "apps/selftimed.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/sprand.h"
#include "graph/builder.h"
#include "support/prng.h"

namespace mcr::apps {
namespace {

TEST(SelfTimed, SingleLoopRateEqualsCycleRatio) {
  // Two nodes, one token in the loop: the loop fires every w1+w2.
  GraphBuilder b(2);
  b.add_arc(0, 1, 3, 1);
  b.add_arc(1, 0, 4, 1);  // ratio (3+4)/2 per token... tokens 2 -> 7/2
  const Graph g = b.build();
  const auto sim = simulate_self_timed(g, 200);
  const auto rates = analytic_rates(g);
  EXPECT_EQ(rates[0], Rational(7, 2));
  EXPECT_NEAR(sim.measured_rate(0), 3.5, 0.05);
  EXPECT_NEAR(sim.measured_rate(1), 3.5, 0.05);
}

TEST(SelfTimed, PipelineRunsAtBottleneckRate) {
  // Fast loop feeding a slow loop; downstream nodes run at the slower
  // (larger cycle time) pace.
  GraphBuilder b(4);
  b.add_arc(0, 1, 2, 1);
  b.add_arc(1, 0, 1, 1);  // loop A: 3/2
  b.add_arc(1, 2, 1, 0);  // feed forward
  b.add_arc(2, 3, 5, 1);
  b.add_arc(3, 2, 5, 1);  // loop B: 10/2 = 5
  const Graph g = b.build();
  const auto rates = analytic_rates(g);
  EXPECT_EQ(rates[0], Rational(3, 2));
  EXPECT_EQ(rates[2], Rational(5));
  const auto sim = simulate_self_timed(g, 400);
  EXPECT_NEAR(sim.measured_rate(0), 1.5, 0.05);
  EXPECT_NEAR(sim.measured_rate(2), 5.0, 0.1);
  EXPECT_NEAR(sim.measured_rate(3), 5.0, 0.1);
}

TEST(SelfTimed, FiringTimesAreMonotone) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 2, 1);
  b.add_arc(1, 2, 3, 0);
  b.add_arc(2, 0, 1, 1);
  const Graph g = b.build();
  const auto sim = simulate_self_timed(g, 50);
  for (NodeId v = 0; v < 3; ++v) {
    for (std::int64_t k = 1; k < sim.iterations; ++k) {
      EXPECT_GE(sim.at(k, v), sim.at(k - 1, v));
    }
  }
}

TEST(SelfTimed, SourceNodesFireImmediately) {
  // A node with no in-arcs fires at t=0 every iteration.
  GraphBuilder b(2);
  b.add_arc(0, 1, 7, 1);
  b.add_arc(1, 1, 2, 1);  // self loop keeps 1 cyclic
  const Graph g = b.build();
  const auto sim = simulate_self_timed(g, 20);
  for (std::int64_t k = 0; k < 20; ++k) EXPECT_EQ(sim.at(k, 0), 0);
  const auto rates = analytic_rates(g);
  EXPECT_EQ(rates[0], Rational(0));
  EXPECT_EQ(rates[1], Rational(2));
}

TEST(SelfTimed, RandomEventGraphsMatchAnalysis) {
  Prng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    gen::SprandConfig cfg;
    cfg.n = static_cast<NodeId>(rng.uniform_int(5, 25));
    cfg.m = 2 * cfg.n;
    cfg.min_weight = 1;
    cfg.max_weight = 20;
    cfg.min_transit = 1;
    cfg.max_transit = 3;
    cfg.seed = rng.fork_seed();
    const Graph g = gen::sprand(cfg);
    const auto rates = analytic_rates(g);
    const std::int64_t iters = 3000;
    const auto sim = simulate_self_timed(g, iters);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(sim.measured_rate(v), rates[static_cast<std::size_t>(v)].to_double(),
                  0.02)
          << "trial " << trial << " node " << v;
    }
  }
}

TEST(SelfTimed, ExactPeriodicityAfterTransient) {
  // With rational rate p/q, firing-time differences become exactly
  // periodic: x_{k+q} - x_k = p for large k.
  GraphBuilder b(2);
  b.add_arc(0, 1, 3, 1);
  b.add_arc(1, 0, 2, 2);  // ratio 5/3
  const Graph g = b.build();
  const auto rates = analytic_rates(g);
  ASSERT_EQ(rates[0], Rational(5, 3));
  const auto sim = simulate_self_timed(g, 300);
  const std::int64_t q = rates[0].den();
  const std::int64_t p = rates[0].num();
  for (std::int64_t k = 200; k + q < 300; ++k) {
    EXPECT_EQ(sim.at(k + q, 0) - sim.at(k, 0), p) << "k=" << k;
  }
}

TEST(SelfTimed, DeadlockDetected) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1, 0);
  b.add_arc(1, 0, 1, 0);  // token-free cycle
  EXPECT_THROW((void)simulate_self_timed(b.build(), 10), std::invalid_argument);
}

TEST(SelfTimed, InputValidation) {
  GraphBuilder b(2);
  b.add_arc(0, 1, -1, 1);
  b.add_arc(1, 0, 1, 1);
  EXPECT_THROW((void)simulate_self_timed(b.build(), 10), std::invalid_argument);
  GraphBuilder b2(1);
  b2.add_arc(0, 0, 1, -1);
  EXPECT_THROW((void)simulate_self_timed(b2.build(), 10), std::invalid_argument);
  EXPECT_THROW((void)simulate_self_timed(Graph(1, {}), 0), std::invalid_argument);
}

TEST(SelfTimed, ZeroTokenArcsResolveWithinIteration) {
  // Chain of zero-token arcs inside one iteration: delays accumulate.
  GraphBuilder b(4);
  b.add_arc(0, 1, 2, 0);
  b.add_arc(1, 2, 3, 0);
  b.add_arc(2, 3, 4, 0);
  b.add_arc(3, 0, 1, 1);  // one token closes the loop
  const Graph g = b.build();
  const auto sim = simulate_self_timed(g, 10);
  EXPECT_EQ(sim.at(0, 0), 1);   // waits the token arc's delay
  EXPECT_EQ(sim.at(0, 3), 10);  // 1 + 2+3+4
  const auto rates = analytic_rates(g);
  EXPECT_EQ(rates[0], Rational(10));  // 10 delay / 1 token
}

}  // namespace
}  // namespace mcr::apps
