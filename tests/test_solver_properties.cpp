// Property-style invariants that must hold for every solver on every
// instance: witnesses are real cycles achieving the reported value,
// results are deterministic, counters are populated, and the reported
// optimum lower-bounds every simple cycle (checked against full
// enumeration on small graphs).
#include <gtest/gtest.h>

#include "core/driver.h"
#include "core/registry.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/builder.h"
#include "graph/cycle_enum.h"
#include "support/prng.h"

namespace mcr {
namespace {

class SolverProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(SolverProperty, WitnessAchievesReportedValue) {
  Prng rng(404);
  for (int trial = 0; trial < 8; ++trial) {
    gen::SprandConfig cfg;
    cfg.n = 40;
    cfg.m = 40 + static_cast<ArcId>(trial) * 15;
    cfg.seed = rng.fork_seed();
    const Graph g = gen::sprand(cfg);
    const auto r = minimum_cycle_mean(g, GetParam());
    ASSERT_TRUE(r.has_cycle);
    ASSERT_TRUE(is_valid_cycle(g, r.cycle));
    EXPECT_EQ(cycle_mean(g, r.cycle), r.value);
  }
}

TEST_P(SolverProperty, LowerBoundsEveryEnumeratedCycle) {
  gen::SprandConfig cfg;
  cfg.n = 12;
  cfg.m = 26;
  cfg.seed = 777;
  const Graph g = gen::sprand(cfg);
  const auto r = minimum_cycle_mean(g, GetParam());
  ASSERT_TRUE(r.has_cycle);
  enumerate_simple_cycles(g, [&](std::span<const ArcId> cycle) {
    std::int64_t w = 0;
    for (const ArcId a : cycle) w += g.weight(a);
    const Rational mean(w, static_cast<std::int64_t>(cycle.size()));
    EXPECT_LE(r.value, mean);
    return true;
  });
}

TEST_P(SolverProperty, DeterministicAcrossRuns) {
  gen::SprandConfig cfg;
  cfg.n = 50;
  cfg.m = 120;
  cfg.seed = 31337;
  const Graph g = gen::sprand(cfg);
  const auto r1 = minimum_cycle_mean(g, GetParam());
  const auto r2 = minimum_cycle_mean(g, GetParam());
  EXPECT_EQ(r1.value, r2.value);
  EXPECT_EQ(r1.cycle, r2.cycle);
  EXPECT_EQ(r1.counters.iterations, r2.counters.iterations);
}

TEST_P(SolverProperty, InvariantUnderWeightScaling) {
  gen::SprandConfig cfg;
  cfg.n = 30;
  cfg.m = 70;
  cfg.seed = 555;
  const Graph g = gen::sprand(cfg);
  const auto base = minimum_cycle_mean(g, GetParam());
  // Scaling all weights by 3 scales lambda* by 3.
  GraphBuilder b(g.num_nodes());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    b.add_arc(g.src(a), g.dst(a), g.weight(a) * 3, g.transit(a));
  }
  const auto scaled = minimum_cycle_mean(b.build(), GetParam());
  ASSERT_TRUE(base.has_cycle);
  ASSERT_TRUE(scaled.has_cycle);
  EXPECT_EQ(scaled.value, base.value * Rational(3));
}

TEST_P(SolverProperty, InvariantUnderWeightShift) {
  // Adding a constant c to every weight adds c to every cycle mean.
  gen::SprandConfig cfg;
  cfg.n = 30;
  cfg.m = 80;
  cfg.seed = 556;
  const Graph g = gen::sprand(cfg);
  const auto base = minimum_cycle_mean(g, GetParam());
  GraphBuilder b(g.num_nodes());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    b.add_arc(g.src(a), g.dst(a), g.weight(a) - 42, g.transit(a));
  }
  const auto shifted = minimum_cycle_mean(b.build(), GetParam());
  EXPECT_EQ(shifted.value, base.value - Rational(42));
}

TEST_P(SolverProperty, CountersArePopulated) {
  gen::SprandConfig cfg;
  cfg.n = 40;
  cfg.m = 100;
  cfg.seed = 808;
  const Graph g = gen::sprand(cfg);
  const auto r = minimum_cycle_mean(g, GetParam());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_GT(r.counters.iterations, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMeanSolvers, SolverProperty,
                         ::testing::Values("burns", "ko", "yto", "howard", "ho", "karp",
                                           "dg", "lawler", "karp2", "oa1"),
                         [](const auto& param_info) { return param_info.param; });

}  // namespace
}  // namespace mcr
