// Every registered minimum-mean-cycle solver is driven through a set of
// hand-crafted instances with known answers. Parameterized over solver
// names so a new registration is automatically covered.
#include <gtest/gtest.h>

#include "core/driver.h"
#include "core/registry.h"
#include "core/verify.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

class MeanSolverTest : public ::testing::TestWithParam<std::string> {
 protected:
  CycleResult solve(const Graph& g) const {
    const auto solver = SolverRegistry::instance().create(GetParam());
    return minimum_cycle_mean(g, *solver);
  }
};

TEST_P(MeanSolverTest, SingleSelfLoop) {
  GraphBuilder b(1);
  b.add_arc(0, 0, 7);
  const auto r = solve(b.build());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(7));
}

TEST_P(MeanSolverTest, UniformRing) {
  const auto r = solve(gen::ring({5, 5, 5, 5}));
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(5));
  EXPECT_EQ(r.cycle.size(), 4u);
}

TEST_P(MeanSolverTest, RingWithFractionalMean) {
  const auto r = solve(gen::ring({1, 2, 3}));
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(2));
  const auto r2 = solve(gen::ring({1, 2}));
  EXPECT_EQ(r2.value, Rational(3, 2));
}

TEST_P(MeanSolverTest, TwoNestedCyclesPicksBetter) {
  // Outer triangle mean 4; inner 2-cycle mean 3.
  GraphBuilder b(3);
  b.add_arc(0, 1, 4);
  b.add_arc(1, 2, 4);
  b.add_arc(2, 0, 4);
  b.add_arc(1, 0, 2);  // 0->1->0 mean 3
  const Graph g = b.build();
  const auto r = solve(g);
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(3));
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleMean).ok);
}

TEST_P(MeanSolverTest, SelfLoopBeatsLongCycle) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 10);
  b.add_arc(1, 2, 10);
  b.add_arc(2, 0, 10);
  b.add_arc(2, 2, 4);
  const auto r = solve(b.build());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(4));
  EXPECT_EQ(r.cycle.size(), 1u);
}

TEST_P(MeanSolverTest, ParallelArcsUseCheapest) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 10);
  b.add_arc(0, 1, 2);  // cheaper parallel
  b.add_arc(1, 0, 4);
  const auto r = solve(b.build());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(3));
}

TEST_P(MeanSolverTest, NegativeWeights) {
  GraphBuilder b(3);
  b.add_arc(0, 1, -10);
  b.add_arc(1, 2, 4);
  b.add_arc(2, 0, -6);  // mean -4
  b.add_arc(0, 0, -1);  // mean -1
  const auto r = solve(b.build());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(-4));
}

TEST_P(MeanSolverTest, AllCyclesTie) {
  // Every arc weight 3: every cycle has mean exactly 3.
  const Graph g = gen::complete(4, 3, 3, 1);
  const auto r = solve(g);
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(3));
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleMean).ok);
}

TEST_P(MeanSolverTest, NearTieResolvedExactly) {
  // Means 7/3 vs 9/4 vs 2: 2 < 9/4 < 7/3.
  GraphBuilder b(9);
  b.add_arc(0, 1, 2);
  b.add_arc(1, 2, 2);
  b.add_arc(2, 0, 3);  // 7/3
  b.add_arc(0, 3, 1000);
  b.add_arc(3, 4, 2);
  b.add_arc(4, 5, 2);
  b.add_arc(5, 6, 2);
  b.add_arc(6, 3, 3);  // 9/4
  b.add_arc(3, 7, 1000);
  b.add_arc(7, 8, 1);
  b.add_arc(8, 7, 3);  // 2
  const auto r = solve(b.build());
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(2));
}

TEST_P(MeanSolverTest, MultiSccTakesGlobalMin) {
  const Graph g = gen::scc_chain(3, 5, 1, 50, 321);
  const auto r = solve(g);
  ASSERT_TRUE(r.has_cycle);
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleMean).ok);
}

TEST_P(MeanSolverTest, AcyclicReportsNoCycle) {
  EXPECT_FALSE(solve(gen::path(6)).has_cycle);
}

TEST_P(MeanSolverTest, LongRingExercisesDeepPropagation) {
  // Single 60-cycle with one heavy arc: mean = (59 + 100)/60.
  std::vector<std::int64_t> w(60, 1);
  w[17] = 100;
  const auto r = solve(gen::ring(w));
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(159, 60));
}

TEST_P(MeanSolverTest, DenseGraphAgainstOracle) {
  const Graph g = gen::complete(6, 1, 20, 99);
  const auto r = solve(g);
  const auto oracle = minimum_cycle_mean(g, "brute_force");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, oracle.value);
}

TEST_P(MeanSolverTest, TorusAgainstOracle) {
  const Graph g = gen::torus(3, 3, 1, 30, 5);
  const auto r = solve(g);
  const auto oracle = minimum_cycle_mean(g, "brute_force");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, oracle.value);
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleMean).ok);
}

TEST_P(MeanSolverTest, WitnessCycleAlwaysConsistent) {
  const Graph g = gen::layered_feedback(4, 2, 1, 9, 8);
  const auto r = solve(g);
  ASSERT_TRUE(r.has_cycle);
  EXPECT_TRUE(is_valid_cycle(g, r.cycle));
  EXPECT_EQ(cycle_mean(g, r.cycle), r.value);
}

INSTANTIATE_TEST_SUITE_P(
    AllMeanSolvers, MeanSolverTest,
    ::testing::Values("burns", "ko", "yto", "howard", "ho", "karp", "dg", "lawler",
                      "karp2", "oa1", "ko_bin", "ko_pair", "yto_bin", "yto_pair",
                      "lawler_improved", "howard_naive_init", "cycle_cancel", "megiddo",
                      "brute_force"),
    [](const auto& param_info) { return param_info.param; });

}  // namespace
}  // namespace mcr
