// Pack-format stability tests for the zero-copy mmap graph store: a
// graph round-trips through a .mcrpack with every accessor equal,
// repacking the same content is byte-identical (the golden-bytes
// guarantee CI diffs against), corrupted packs are rejected with typed
// errors and never attach, and — the load-bearing property — every
// registered solver returns a bit-identical CycleResult on the mmap'd
// view and the builder-owned original, tiled or not.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/driver.h"
#include "core/registry.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "graph/builder.h"
#include "graph/fingerprint.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "store/dataset_watcher.h"
#include "store/format.h"
#include "store/pack_reader.h"
#include "store/pack_writer.h"
#include "svc/graph_registry.h"

namespace {

using namespace mcr;

/// A /tmp pack path that cleans up after itself.
struct TempPack {
  TempPack() {
    static std::atomic<int> counter{0};
    path = "/tmp/mcr_store_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".mcrpack";
  }
  ~TempPack() { std::remove(path.c_str()); }
  TempPack(const TempPack&) = delete;
  TempPack& operator=(const TempPack&) = delete;
  std::string path;
};

Graph make_sprand(NodeId n, ArcId m, std::uint64_t seed) {
  gen::SprandConfig cfg;
  cfg.n = n;
  cfg.m = m;
  cfg.min_transit = 1;
  cfg.max_transit = 4;  // non-trivial transit so ratio solvers differ from mean
  cfg.seed = seed;
  return gen::sprand(cfg);
}

Graph make_circuit(NodeId registers, std::uint64_t seed) {
  gen::CircuitConfig cfg;
  cfg.registers = registers;
  cfg.module_size = 8;
  cfg.seed = seed;
  return gen::circuit(cfg);
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

/// Re-seals a mutated pack image so it fails on structure, not on the
/// checksum: recomputes the whole-file checksum and patches the header.
void reseal(std::string& bytes) {
  const std::size_t off = store::checksum_field_offset();
  ASSERT_GE(bytes.size(), off + sizeof(std::uint64_t));
  const std::uint64_t sum = store::pack_checksum(
      reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size(), off);
  std::memcpy(bytes.data() + off, &sum, sizeof(sum));
}

store::PackErrorKind open_expecting_error(const std::string& path) {
  try {
    (void)store::PackReader::open(path);
  } catch (const store::PackError& e) {
    return e.kind();
  }
  ADD_FAILURE() << path << " unexpectedly attached";
  return store::PackErrorKind::kIo;
}

// ---------------------------------------------------------------------------
// Round trip.

TEST(PackRoundTrip, EveryAccessorMatchesTheBuilderGraph) {
  for (const Graph& g :
       {make_sprand(60, 180, 7), make_circuit(48, 9), Graph(3, {})}) {
    TempPack pack;
    const store::PackWriteInfo info = store::write_pack(pack.path, g);
    EXPECT_EQ(info.fingerprint, fingerprint_hex(g));

    const store::PackReader reader = store::PackReader::open(pack.path);
    EXPECT_EQ(reader.fingerprint_hex(), fingerprint_hex(g));
    const Graph& p = *reader.graph();
    EXPECT_TRUE(p.is_external());
    EXPECT_FALSE(g.is_external());
    ASSERT_EQ(p.num_nodes(), g.num_nodes());
    ASSERT_EQ(p.num_arcs(), g.num_arcs());
    EXPECT_EQ(p.min_weight(), g.min_weight());
    EXPECT_EQ(p.max_weight(), g.max_weight());
    EXPECT_EQ(p.total_transit(), g.total_transit());
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      ASSERT_EQ(p.src(a), g.src(a));
      ASSERT_EQ(p.dst(a), g.dst(a));
      ASSERT_EQ(p.weight(a), g.weight(a));
      ASSERT_EQ(p.transit(a), g.transit(a));
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto po = p.out_arcs(u);
      const auto go = g.out_arcs(u);
      const auto pi = p.in_arcs(u);
      const auto gi = g.in_arcs(u);
      ASSERT_TRUE(std::equal(po.begin(), po.end(), go.begin(), go.end()));
      ASSERT_TRUE(std::equal(pi.begin(), pi.end(), gi.begin(), gi.end()));
    }
    // The mapped view re-fingerprints to the same content hash, so
    // content addressing is backend-independent.
    EXPECT_EQ(fingerprint_hex(p), fingerprint_hex(g));
    // The pack carries the condensation; the builder graph does not.
    EXPECT_NE(p.scc_hint(), nullptr);
    EXPECT_EQ(g.scc_hint(), nullptr);
  }
}

TEST(PackRoundTrip, GraphOutlivesItsPackReader) {
  TempPack pack;
  const Graph g = make_sprand(40, 120, 3);
  store::write_pack(pack.path, g);
  std::shared_ptr<const Graph> held;
  {
    const store::PackReader reader = store::PackReader::open(pack.path);
    held = reader.graph();
  }  // reader (and its handle on the mapping) gone
  // The graph's keepalive pins the mapping: accessors still work and
  // still agree with the original content.
  EXPECT_EQ(fingerprint_hex(*held), fingerprint_hex(g));
}

TEST(PackRoundTrip, RepackIsByteIdenticalIncludingFromTheMappedView) {
  const Graph g = make_circuit(64, 17);
  TempPack first, second, third;
  store::write_pack(first.path, g);
  store::write_pack(second.path, g);
  const std::string golden = read_file(first.path);
  EXPECT_EQ(golden, read_file(second.path));  // deterministic writer

  // Packing the mmap'd view of the pack reproduces the same bytes:
  // nothing is lost or reordered crossing the storage boundary.
  const store::PackReader reader = store::PackReader::open(first.path);
  store::write_pack(third.path, *reader.graph());
  EXPECT_EQ(golden, read_file(third.path));
}

TEST(PackRoundTrip, ComponentMetaCountsNodesAndIntraArcs) {
  // Two disjoint rings of different sizes: two cyclic components whose
  // meta rows must add up to the whole graph.
  GraphBuilder b(7);
  for (NodeId u = 0; u < 4; ++u) b.add_arc(u, (u + 1) % 4, 1);
  for (NodeId u = 4; u < 7; ++u) b.add_arc(u, u == 6 ? 4 : u + 1, 2);
  const Graph g = b.build();
  TempPack pack;
  const store::PackWriteInfo info = store::write_pack(pack.path, g);
  EXPECT_EQ(info.num_components, 2);
  EXPECT_EQ(info.num_cyclic, 2);
  const store::PackReader reader = store::PackReader::open(pack.path);
  std::int64_t nodes = 0, arcs = 0;
  for (const store::ComponentMeta& cm : reader.component_meta()) {
    EXPECT_EQ(cm.cyclic, 1);
    nodes += cm.nodes;
    arcs += cm.arcs;
  }
  EXPECT_EQ(nodes, g.num_nodes());
  EXPECT_EQ(arcs, g.num_arcs());
}

// ---------------------------------------------------------------------------
// Corruption rejection: every rejection is typed, and a rejected pack
// never yields a reader.

TEST(PackRejection, MissingFileIsIo) {
  EXPECT_EQ(open_expecting_error("/tmp/mcr_store_definitely_absent.mcrpack"),
            store::PackErrorKind::kIo);
}

TEST(PackRejection, TruncationBadMagicBadEndiannessBadVersion) {
  TempPack pack;
  store::write_pack(pack.path, make_sprand(32, 96, 5));
  const std::string golden = read_file(pack.path);

  TempPack mutant;
  write_file(mutant.path, golden.substr(0, 10));  // shorter than the header
  EXPECT_EQ(open_expecting_error(mutant.path), store::PackErrorKind::kTruncated);

  std::string bytes = golden;
  bytes[0] = 'X';
  write_file(mutant.path, bytes);
  EXPECT_EQ(open_expecting_error(mutant.path), store::PackErrorKind::kBadMagic);

  bytes = golden;
  bytes[12] ^= 0x01;  // endian_tag (offset 12): looks byte-swapped
  write_file(mutant.path, bytes);
  EXPECT_EQ(open_expecting_error(mutant.path),
            store::PackErrorKind::kBadEndianness);

  bytes = golden;
  bytes[8] = 0x7f;  // format_version (offset 8): far-future version
  write_file(mutant.path, bytes);
  EXPECT_EQ(open_expecting_error(mutant.path), store::PackErrorKind::kBadVersion);
}

TEST(PackRejection, AnySingleFlippedPayloadByteFailsTheChecksum) {
  TempPack pack;
  store::write_pack(pack.path, make_sprand(32, 96, 6));
  const std::string golden = read_file(pack.path);
  TempPack mutant;
  // Flip one byte in each region: section table, early payload, last byte.
  for (const std::size_t pos :
       {sizeof(store::PackHeader) - 8, sizeof(store::PackHeader) + 70,
        golden.size() - 1}) {
    std::string bytes = golden;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
    write_file(mutant.path, bytes);
    EXPECT_EQ(open_expecting_error(mutant.path),
              store::PackErrorKind::kChecksumMismatch)
        << "flipped byte at " << pos;
  }
}

TEST(PackRejection, StructurallyInvalidButResealedPackIsBadSection) {
  TempPack pack;
  store::write_pack(pack.path, make_sprand(32, 96, 8));
  std::string bytes = read_file(pack.path);
  // Point the first arc's source past num_nodes, then re-seal the
  // checksum: this models a buggy writer, not bit rot, and must still
  // be rejected — by structural validation. The arc_src section is the
  // first payload, at the first aligned offset past the header.
  const std::uint32_t bogus = 0x7fffffff;
  std::memcpy(bytes.data() + store::align_up(sizeof(store::PackHeader)), &bogus,
              sizeof(bogus));
  reseal(bytes);
  TempPack mutant;
  write_file(mutant.path, bytes);
  EXPECT_EQ(open_expecting_error(mutant.path), store::PackErrorKind::kBadSection);
}

TEST(PackRejection, FileBytesMismatchIsRejectedEvenWhenResealed) {
  TempPack pack;
  store::write_pack(pack.path, make_sprand(32, 96, 9));
  std::string bytes = read_file(pack.path);
  bytes.append(64, '\0');  // grow the file; header file_bytes now lies
  reseal(bytes);
  TempPack mutant;
  write_file(mutant.path, bytes);
  // A size that disagrees with the header is the truncation check, in
  // either direction — it fires before (and regardless of) the checksum.
  EXPECT_EQ(open_expecting_error(mutant.path), store::PackErrorKind::kTruncated);
}

// ---------------------------------------------------------------------------
// The zero-copy contract: solves on the mapped view are bit-identical
// to solves on the builder-owned graph, for every registered solver,
// untiled and tiled.

TEST(PackSolve, BitIdenticalForEveryRegisteredSolverAndTiling) {
  const Graph sprand = make_sprand(24, 72, 11);
  const Graph circuit = make_circuit(24, 13);
  for (const Graph* g : {&sprand, &circuit}) {
    TempPack pack;
    store::write_pack(pack.path, *g);
    const store::PackReader reader = store::PackReader::open(pack.path);
    const Graph& p = *reader.graph();
    for (const std::string& name : SolverRegistry::instance().all_names()) {
      const auto solver = SolverRegistry::instance().create(name);
      for (const std::int32_t tile_arcs : {0, 64}) {
        SolveOptions options;
        options.tile_arcs = tile_arcs;
        const bool ratio = solver->kind() == ProblemKind::kCycleRatio;
        const CycleResult a = ratio
                                  ? minimum_cycle_ratio(*g, *solver, options)
                                  : minimum_cycle_mean(*g, *solver, options);
        const CycleResult b = ratio ? minimum_cycle_ratio(p, *solver, options)
                                    : minimum_cycle_mean(p, *solver, options);
        ASSERT_EQ(a.has_cycle, b.has_cycle) << name << " tile " << tile_arcs;
        EXPECT_EQ(a.value, b.value) << name << " tile " << tile_arcs;
        EXPECT_EQ(a.cycle, b.cycle) << name << " tile " << tile_arcs;
        EXPECT_EQ(a.counters, b.counters) << name << " tile " << tile_arcs;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DatasetWatcher: generations, pinning, and failure atomicity.

TEST(DatasetWatcher, PublishesGenerationsAndKeepsOldSnapshotsAlive) {
  TempPack a, b;
  store::write_pack(a.path, make_sprand(30, 90, 21));
  store::write_pack(b.path, make_sprand(40, 120, 22));

  store::DatasetWatcher watcher;
  EXPECT_EQ(watcher.current(), nullptr);
  const auto gen1 = watcher.attach(a.path);
  EXPECT_EQ(gen1->generation, 1u);
  EXPECT_EQ(gen1->path, a.path);
  const auto gen2 = watcher.attach(b.path);
  EXPECT_EQ(gen2->generation, 2u);
  EXPECT_NE(gen1->fingerprint, gen2->fingerprint);
  EXPECT_EQ(watcher.current()->generation, 2u);

  // The old snapshot (an in-flight solve's view) still works after the
  // swap — and even after its pack file is deleted from disk.
  std::remove(a.path.c_str());
  EXPECT_EQ(fingerprint_hex(*gen1->graph), gen1->fingerprint);
}

TEST(DatasetWatcher, FailedAttachLeavesCurrentGenerationServing) {
  TempPack a, corrupt;
  store::write_pack(a.path, make_sprand(30, 90, 23));
  store::DatasetWatcher watcher;
  const auto gen1 = watcher.attach(a.path);

  std::string bytes = read_file(a.path);
  bytes[bytes.size() - 1] ^= 0x01;
  write_file(corrupt.path, bytes);
  EXPECT_THROW((void)watcher.attach(corrupt.path), store::PackError);
  ASSERT_NE(watcher.current(), nullptr);
  EXPECT_EQ(watcher.current()->generation, 1u);
  EXPECT_EQ(watcher.current()->fingerprint, gen1->fingerprint);

  // The generation after a failure is still the next integer: failed
  // attaches do not burn generation numbers.
  const auto gen2 = watcher.attach(a.path);
  EXPECT_EQ(gen2->generation, 2u);
}

// ---------------------------------------------------------------------------
// Registry byte accounting by backing.

TEST(GraphRegistryBytes, GaugesRiseAndFallByBackingKind) {
  TempPack pack;
  const Graph g = make_sprand(50, 150, 31);
  store::write_pack(pack.path, g);
  const store::PackReader reader = store::PackReader::open(pack.path);

  obs::MetricsRegistry metrics;
  svc::GraphRegistry registry(2, &metrics);
  const std::string builder_gauge =
      obs::labeled_name("mcr_graph_bytes", {{"backing", "builder"}});
  const std::string mmap_gauge =
      obs::labeled_name("mcr_graph_bytes", {{"backing", "mmap"}});

  registry.add(make_sprand(50, 150, 32));
  const std::uint64_t builder_resident = registry.builder_bytes();
  EXPECT_GT(builder_resident, 0u);
  EXPECT_EQ(registry.mmap_bytes(), 0u);

  registry.add_shared(reader.fingerprint_hex(), reader.graph());
  EXPECT_EQ(registry.builder_bytes(), builder_resident);
  const std::uint64_t mmap_resident = registry.mmap_bytes();
  EXPECT_GT(mmap_resident, 0u);
  EXPECT_EQ(metrics.gauge(builder_gauge).value(),
            static_cast<std::int64_t>(builder_resident));
  EXPECT_EQ(metrics.gauge(mmap_gauge).value(),
            static_cast<std::int64_t>(mmap_resident));

  // Two more builder graphs evict the original builder entry and then
  // the mmap entry (capacity 2, LRU): each eviction gives its bytes
  // back to the right backing total.
  registry.add(make_sprand(60, 180, 33));
  registry.add(make_sprand(70, 210, 34));
  EXPECT_EQ(registry.mmap_bytes(), 0u);
  EXPECT_EQ(metrics.gauge(mmap_gauge).value(), 0);
  EXPECT_EQ(metrics.gauge(builder_gauge).value(),
            static_cast<std::int64_t>(registry.builder_bytes()));
  EXPECT_EQ(registry.size(), 2u);
}

}  // namespace
