// Stress and extreme-value tests: many-seed differential agreement,
// weight magnitudes near the documented limits, degenerate shapes, and
// deep graphs that would break recursive implementations.
#include <gtest/gtest.h>

#include "core/driver.h"
#include "core/registry.h"
#include "core/verify.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/builder.h"
#include "support/prng.h"

namespace mcr {
namespace {

TEST(Stress, HundredSeedAgreementHowardYtoDg) {
  // The three fastest solvers of three different families must agree on
  // 100 random instances of mixed shapes.
  Prng rng(2026);
  for (int trial = 0; trial < 100; ++trial) {
    gen::SprandConfig cfg;
    cfg.n = static_cast<NodeId>(rng.uniform_int(8, 120));
    cfg.m = cfg.n + static_cast<ArcId>(rng.uniform_int(0, 3 * cfg.n));
    cfg.min_weight = rng.bernoulli(0.3) ? -5000 : 1;
    cfg.max_weight = 10000;
    cfg.seed = rng.fork_seed();
    const Graph g = gen::sprand(cfg);
    const auto howard = minimum_cycle_mean(g, "howard");
    const auto yto = minimum_cycle_mean(g, "yto");
    const auto dg = minimum_cycle_mean(g, "dg");
    ASSERT_TRUE(howard.has_cycle);
    EXPECT_EQ(howard.value, yto.value) << "trial " << trial;
    EXPECT_EQ(howard.value, dg.value) << "trial " << trial;
  }
}

TEST(Stress, BillionScaleWeightsStayExact) {
  Prng rng(7);
  GraphBuilder b(50);
  for (NodeId v = 0; v < 50; ++v) {
    b.add_arc(v, (v + 1) % 50, rng.uniform_int(-1000000000, 1000000000));
  }
  for (int i = 0; i < 100; ++i) {
    b.add_arc(static_cast<NodeId>(rng.uniform_int(0, 49)),
              static_cast<NodeId>(rng.uniform_int(0, 49)),
              rng.uniform_int(-1000000000, 1000000000));
  }
  const Graph g = b.build();
  const auto karp = minimum_cycle_mean(g, "karp");
  for (const char* solver : {"howard", "yto", "burns", "lawler", "dg", "karp2"}) {
    const auto r = minimum_cycle_mean(g, solver);
    EXPECT_EQ(r.value, karp.value) << solver;
  }
  EXPECT_TRUE(verify_result(g, karp, ProblemKind::kCycleMean).ok);
}

TEST(Stress, AllZeroWeights) {
  gen::SprandConfig cfg;
  cfg.n = 60;
  cfg.m = 180;
  cfg.min_weight = 0;
  cfg.max_weight = 0;
  cfg.seed = 5;
  const Graph g = gen::sprand(cfg);
  for (const char* solver : {"howard", "yto", "ko", "burns", "lawler", "karp", "oa1"}) {
    const auto r = minimum_cycle_mean(g, solver);
    ASSERT_TRUE(r.has_cycle) << solver;
    EXPECT_EQ(r.value, Rational(0)) << solver;
  }
}

TEST(Stress, DeepRingLinearSpaceSolvers) {
  // 50k-node single cycle: quadratic-space solvers are excluded, the
  // rest must handle the depth without recursion or overflow.
  const Graph g = gen::random_ring(50000, 1, 100, 9);
  const auto howard = minimum_cycle_mean(g, "howard");
  const auto yto = minimum_cycle_mean(g, "yto");
  const auto cancel = minimum_cycle_mean(g, "cycle_cancel");
  ASSERT_TRUE(howard.has_cycle);
  EXPECT_EQ(howard.value, yto.value);
  EXPECT_EQ(howard.value, cancel.value);
  EXPECT_EQ(howard.cycle.size(), 50000u);
}

TEST(Stress, ManyParallelSelfLoops) {
  GraphBuilder b(1);
  Prng rng(3);
  std::int64_t best = INT64_MAX;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t w = rng.uniform_int(-1000, 1000);
    best = std::min(best, w);
    b.add_arc(0, 0, w);
  }
  const auto r = minimum_cycle_mean(b.build(), "howard");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(best));
}

TEST(Stress, HugeTransitTimesRatio) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1000000, 999983);  // large prime transit
  b.add_arc(1, 0, 999999, 1000003);
  const Graph g = b.build();
  const auto r = minimum_cycle_ratio(g, "howard_ratio");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(1999999, 1999986));
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleRatio).ok);
}

TEST(Stress, StarOfCyclesManyComponents) {
  // 200 independent 2-cycles: driver must visit all and take the min.
  GraphBuilder b(400);
  Prng rng(17);
  Rational best(INT64_MAX);
  for (NodeId c = 0; c < 200; ++c) {
    const std::int64_t w1 = rng.uniform_int(1, 100000);
    const std::int64_t w2 = rng.uniform_int(1, 100000);
    b.add_arc(2 * c, 2 * c + 1, w1);
    b.add_arc(2 * c + 1, 2 * c, w2);
    const Rational mean(w1 + w2, 2);
    if (mean < best) best = mean;
  }
  for (const char* solver : {"howard", "yto", "karp", "cycle_cancel"}) {
    const auto r = minimum_cycle_mean(b.build(), solver);
    EXPECT_EQ(r.value, best) << solver;
  }
}

TEST(Stress, AdversarialLayeredGraphsAllSolversAgree) {
  for (const NodeId layers : {3, 6, 10}) {
    const Graph g = gen::layered_feedback(layers, 4, 1, 1000, 77);
    const auto reference = minimum_cycle_mean(g, "karp");
    for (const char* solver : {"howard", "yto", "ko", "burns", "ho", "dg", "oa1"}) {
      EXPECT_EQ(minimum_cycle_mean(g, solver).value, reference.value)
          << solver << " layers=" << layers;
    }
  }
}

TEST(Stress, RepeatSolvesShareNoState) {
  // Solvers must be reusable objects: run one instance through three
  // different graphs and recheck the first.
  const auto solver = SolverRegistry::instance().create("howard");
  const Graph g1 = gen::ring({1, 2, 3});
  const Graph g2 = gen::complete(5, 1, 50, 3);
  const auto first = minimum_cycle_mean(g1, *solver);
  (void)minimum_cycle_mean(g2, *solver);
  const auto again = minimum_cycle_mean(g1, *solver);
  EXPECT_EQ(first.value, again.value);
  EXPECT_EQ(first.cycle, again.cycle);
}

}  // namespace
}  // namespace mcr
