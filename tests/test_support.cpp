#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "support/op_counters.h"
#include "support/stats.h"
#include "support/table.h"

namespace mcr {
namespace {

TEST(RunStats, EmptyIsZero) {
  RunStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunStats, SingleValue) {
  RunStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.total(), 3.5);
}

TEST(RunStats, KnownMoments) {
  RunStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunStats, NegativeValues) {
  RunStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  // Just check monotonicity and units, no sleeping in unit tests.
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_GE(t.millis(), b * 1000.0 * 0.5);
}

TEST(TimerReset, RestartsClock) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(OpCounters, SummaryListsOnlyNonzero) {
  OpCounters c;
  c.iterations = 3;
  c.heap_inserts = 7;
  const std::string s = c.summary();
  EXPECT_NE(s.find("iters=3"), std::string::npos);
  EXPECT_NE(s.find("heap_ins=7"), std::string::npos);
  EXPECT_EQ(s.find("relax"), std::string::npos);
}

TEST(OpCounters, EmptySummary) {
  OpCounters c;
  EXPECT_EQ(c.summary(), "(none)");
}

TEST(OpCounters, Accumulate) {
  OpCounters a;
  a.iterations = 1;
  a.arc_scans = 10;
  OpCounters b;
  b.iterations = 2;
  b.heap_delete_mins = 4;
  a += b;
  EXPECT_EQ(a.iterations, 3u);
  EXPECT_EQ(a.arc_scans, 10u);
  EXPECT_EQ(a.heap_delete_mins, 4u);
  EXPECT_EQ(a.heap_total(), 4u);
}

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Formatting, FixedAndMs) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_ms(0.00123), "1.23");
}

}  // namespace
}  // namespace mcr
