// Tests for the solve service stack: graph fingerprinting, the shared
// result schema, wire framing, the LRU/single-flight result cache, the
// graph registry, driver cancellation, and a live in-process Server
// exercised over real Unix-domain / TCP sockets — including the
// ISSUE-level guarantees (8 concurrent identical requests → one solve;
// queue capacity K + j extra slow solves → j explicit BUSY rejections;
// deadlines; graceful drain) and a frame fuzzer for protocol
// robustness (runs under ASan and TSan in CI).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/driver.h"
#include "core/registry.h"
#include "graph/builder.h"
#include "graph/fingerprint.h"
#include "graph/io.h"
#include "obs/metrics.h"
#include "support/json.h"
#include "support/prng.h"
#include "svc/cache.h"
#include "svc/client.h"
#include "svc/graph_registry.h"
#include "svc/protocol.h"
#include "store/format.h"
#include "store/pack_writer.h"
#include "svc/request_log.h"
#include "svc/result_json.h"
#include "svc/server.h"

namespace {

using namespace mcr;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Shared fixtures and helpers.

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/mcr_svc_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

Graph make_ring(NodeId n, std::int64_t base_weight) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    b.add_arc(u, (u + 1) % n, base_weight + u);
  }
  return b.build();
}

std::string dimacs_text(const Graph& g) {
  std::ostringstream os;
  write_dimacs(os, g, "test_svc");
  return os.str();
}

// A deliberately slow mean solver: sleeps kNap per strongly connected
// component, then delegates to Howard. Registered under two names so
// tests can force two jobs into different dispatch groups.
constexpr auto kNap = 300ms;

class SleepySolver : public Solver {
 public:
  explicit SleepySolver(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] ProblemKind kind() const override { return ProblemKind::kCycleMean; }
  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    std::this_thread::sleep_for(kNap);
    return SolverRegistry::instance().create("howard")->solve_scc(g);
  }

 private:
  std::string name_;
};

void ensure_sleepy_solvers() {
  static std::once_flag once;
  std::call_once(once, [] {
    for (const char* name : {"test_sleepy", "test_sleepy2"}) {
      SolverInfo info;
      info.name = name;
      info.display = "Sleepy";
      info.source = "test fixture";
      info.year = 2026;
      info.bound = "O(sleep)";
      info.kind = ProblemKind::kCycleMean;
      SolverRegistry::instance().add(
          info, [name](const SolverConfig&) -> std::unique_ptr<Solver> {
            return std::make_unique<SleepySolver>(name);
          });
    }
  });
}

CycleResult solve_self_loop(std::int64_t weight) {
  GraphBuilder b(1);
  b.add_arc(0, 0, weight);
  const Graph g = b.build();
  return minimum_cycle_mean(g, *SolverRegistry::instance().create("howard"));
}

// ---------------------------------------------------------------------------
// Fingerprint.

TEST(Fingerprint, SameContentSameHash) {
  const Graph a = make_ring(16, 3);
  const Graph b = make_ring(16, 3);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_EQ(fingerprint_hex(a), fingerprint_hex(b));
  EXPECT_EQ(fingerprint_hex(a).size(), 32u);
}

TEST(Fingerprint, SensitiveToEveryArcField) {
  const Graph base = make_ring(8, 1);
  const Fingerprint fp = fingerprint(base);

  EXPECT_NE(fp, fingerprint(make_ring(8, 2)));  // weight
  EXPECT_NE(fp, fingerprint(make_ring(9, 1)));  // node count

  GraphBuilder b(8);  // same arcs, one transit changed
  for (NodeId u = 0; u < 8; ++u) {
    b.add_arc(u, (u + 1) % 8, 1 + u, u == 3 ? 2 : 1);
  }
  EXPECT_NE(fp, fingerprint(b.build()));

  GraphBuilder c(8);  // one extra arc
  for (NodeId u = 0; u < 8; ++u) c.add_arc(u, (u + 1) % 8, 1 + u);
  c.add_arc(0, 4, 100);
  EXPECT_NE(fp, fingerprint(c.build()));
}

TEST(Fingerprint, HexIsZeroPadded) {
  const Fingerprint fp{0x1, 0xab};
  EXPECT_EQ(fp.hex(), "000000000000000100000000000000ab");
}

// ---------------------------------------------------------------------------
// Shared result schema.

TEST(ResultJson, CyclicResultSchema) {
  const CycleResult r = solve_self_loop(7);
  const std::string text = svc::result_json(r, "howard", "min_mean", 1.5);
  EXPECT_EQ(text,
            "{\"algorithm\":\"howard\",\"objective\":\"min_mean\","
            "\"has_cycle\":true,\"value_num\":7,\"value_den\":1,\"value\":7,"
            "\"cycle_length\":1,\"cycle_arcs\":[0],\"milliseconds\":1.5}");
  const json::Value v = json::parse(text);  // parses as valid JSON
  EXPECT_EQ(v.at("value_num").as_double(), 7.0);
}

TEST(ResultJson, AcyclicResultOmitsValueFields) {
  const CycleResult r;  // has_cycle == false
  const std::string text = svc::result_json(r, "karp", "min_mean", 0.25);
  EXPECT_EQ(text,
            "{\"algorithm\":\"karp\",\"objective\":\"min_mean\","
            "\"has_cycle\":false,\"milliseconds\":0.25}");
  EXPECT_FALSE(json::parse(text).has("value_num"));
}

// ---------------------------------------------------------------------------
// Wire framing.

TEST(Protocol, FrameRoundTripThroughPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = R"({"verb":"PING"})";
  ASSERT_TRUE(svc::write_all(fds[1], svc::encode_frame(payload)));
  std::string out;
  EXPECT_EQ(svc::read_frame(fds[0], svc::kDefaultMaxFrameBytes, out),
            svc::ReadStatus::kOk);
  EXPECT_EQ(out, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Protocol, RejectsBadMagicOversizeAndTruncation) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string out;

  ASSERT_TRUE(svc::write_all(fds[1], std::string("XXXX\x01\x00\x00\x00z", 9)));
  // The whole 8-byte header is consumed before the magic check fires.
  EXPECT_EQ(svc::read_frame(fds[0], 1024, out), svc::ReadStatus::kBadMagic);
  char drain[1];
  ASSERT_EQ(::read(fds[0], drain, 1), 1);  // the stray payload byte

  ASSERT_TRUE(svc::write_all(fds[1], std::string("MCR1\xff\xff\xff\xff", 8)));
  EXPECT_EQ(svc::read_frame(fds[0], 1024, out), svc::ReadStatus::kTooLarge);

  ASSERT_TRUE(svc::write_all(fds[1], std::string("MC", 2)));
  ::close(fds[1]);
  EXPECT_EQ(svc::read_frame(fds[0], 1024, out), svc::ReadStatus::kTruncated);
  EXPECT_EQ(svc::read_frame(fds[0], 1024, out), svc::ReadStatus::kClosed);
  ::close(fds[0]);
}

// ---------------------------------------------------------------------------
// Result cache.

TEST(ResultCache, MissPublishHitAndLruEviction) {
  obs::MetricsRegistry metrics;
  svc::ResultCache cache(2, &metrics);
  const CycleResult r = solve_self_loop(5);

  const svc::CacheKey k1{"fp1", "min_mean", "howard"};
  auto o = cache.acquire(k1);
  EXPECT_EQ(o.role, svc::ResultCache::Role::kLead);
  cache.publish(k1, r, 2.0);

  o = cache.acquire(k1);
  ASSERT_EQ(o.role, svc::ResultCache::Role::kHit);
  EXPECT_EQ(o.result.value, r.value);
  EXPECT_EQ(o.solve_ms, 2.0);

  // Distinct objective and algorithm are distinct rows.
  EXPECT_EQ(cache.acquire({"fp1", "max_mean", "howard"}).role,
            svc::ResultCache::Role::kLead);
  cache.publish({"fp1", "max_mean", "howard"}, r, 1.0);
  EXPECT_EQ(cache.size(), 2u);

  // Touch k1, insert a third row: the untouched row is evicted.
  (void)cache.acquire(k1);
  EXPECT_EQ(cache.acquire({"fp2", "min_mean", "howard"}).role,
            svc::ResultCache::Role::kLead);
  cache.publish({"fp2", "min_mean", "howard"}, r, 1.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.acquire(k1).role, svc::ResultCache::Role::kHit);
  EXPECT_EQ(metrics.counter("mcr_cache_evictions_total").value(), 1u);
  EXPECT_GE(metrics.counter("mcr_cache_hits_total").value(), 3u);
  EXPECT_EQ(metrics.gauge("mcr_cache_entries").value(), 2);
}

TEST(ResultCache, SingleFlightJoinerReceivesLeaderResult) {
  obs::MetricsRegistry metrics;
  svc::ResultCache cache(4, &metrics);
  const svc::CacheKey key{"fp", "min_mean", "howard"};
  const CycleResult r = solve_self_loop(9);

  auto lead = cache.acquire(key);
  ASSERT_EQ(lead.role, svc::ResultCache::Role::kLead);

  svc::ResultCache::Outcome joined;
  std::thread joiner([&] { joined = cache.acquire(key); });
  std::this_thread::sleep_for(100ms);  // joiner is (almost surely) waiting
  cache.publish(key, r, 3.0);
  joiner.join();

  EXPECT_NE(joined.role, svc::ResultCache::Role::kLead);
  EXPECT_TRUE(joined.error_code.empty());
  EXPECT_EQ(joined.result.value, r.value);
  EXPECT_EQ(joined.solve_ms, 3.0);
}

TEST(ResultCache, FailurePropagatesToJoinersAndCachesNothing) {
  svc::ResultCache cache(4);
  const svc::CacheKey key{"fp", "min_mean", "howard"};
  auto lead = cache.acquire(key);
  ASSERT_EQ(lead.role, svc::ResultCache::Role::kLead);

  svc::ResultCache::Outcome joined;
  std::thread joiner([&] { joined = cache.acquire(key); });
  std::this_thread::sleep_for(100ms);
  cache.fail(key, svc::kErrBusy, "queue full");
  joiner.join();

  if (joined.role == svc::ResultCache::Role::kJoined) {
    EXPECT_EQ(joined.error_code, svc::kErrBusy);
  } else {
    // The joiner raced past the flight's teardown and became a new
    // leader; it owes the cache a completion.
    cache.fail(key, svc::kErrBusy, "queue full");
  }
  EXPECT_EQ(cache.size(), 0u);  // errors are never cached
  EXPECT_EQ(cache.acquire(key).role, svc::ResultCache::Role::kLead);
  cache.fail(key, "X", "cleanup");
}

// ---------------------------------------------------------------------------
// Graph registry.

TEST(GraphRegistry, IdempotentAddLruEvictionAndSharedOwnership) {
  obs::MetricsRegistry metrics;
  svc::GraphRegistry reg(2, &metrics);

  const std::string fp1 = reg.add(make_ring(8, 1));
  const std::string fp2 = reg.add(make_ring(8, 2));
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.add(make_ring(8, 1)), fp1);  // idempotent
  EXPECT_EQ(reg.size(), 2u);

  // Hold the about-to-be-evicted graph; find() touches fp1, so adding a
  // third graph evicts fp2.
  const std::shared_ptr<const Graph> held = reg.find(fp2);
  ASSERT_NE(held, nullptr);
  ASSERT_NE(reg.find(fp1), nullptr);
  const std::string fp3 = reg.add(make_ring(8, 3));
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.find(fp2), nullptr);
  EXPECT_NE(reg.find(fp3), nullptr);

  // The evicted graph survives for holders of the shared_ptr.
  EXPECT_EQ(held->num_nodes(), 8u);
  EXPECT_EQ(metrics.counter("mcr_graph_evictions_total").value(), 1u);
}

// ---------------------------------------------------------------------------
// Driver cancellation (the deadline hook).

TEST(DriverCancel, PresetFlagCancelsBeforeAnyWork) {
  const Graph g = make_ring(8, 1);
  std::atomic<bool> cancel{true};
  SolveOptions options;
  options.cancel = &cancel;
  const auto solver = SolverRegistry::instance().create("howard");
  EXPECT_THROW((void)minimum_cycle_mean(g, *solver, options), SolveCancelled);
}

TEST(DriverCancel, NullTokenSolvesNormally) {
  const Graph g = make_ring(8, 1);
  const auto solver = SolverRegistry::instance().create("howard");
  const CycleResult r = minimum_cycle_mean(g, *solver);
  EXPECT_TRUE(r.has_cycle);
}

// ---------------------------------------------------------------------------
// Registry error message (satellite: unknown --algo lists solvers).

TEST(RegistryErrors, UnknownSolverMessageListsRegisteredNames) {
  try {
    (void)SolverRegistry::instance().create("no_such_algorithm");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown solver 'no_such_algorithm'"), std::string::npos);
    EXPECT_NE(msg.find("registered solvers:"), std::string::npos);
    EXPECT_NE(msg.find("howard"), std::string::npos);
    EXPECT_NE(msg.find("karp"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Live server.

TEST(SvcServer, PingLoadSolveCacheAndStats) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  svc::Server server(so);
  server.start();

  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);
  EXPECT_TRUE(client.ping());

  const Graph g = make_ring(32, 5);
  const std::string fp = client.load_dimacs_text(dimacs_text(g));
  EXPECT_EQ(fp, fingerprint_hex(g));  // content addressing is canonical

  const json::Value first = client.solve(fp);
  ASSERT_EQ(first.string_or("status", ""), "ok");
  EXPECT_FALSE(first.at("cached").as_bool());
  const json::Value second = client.solve(fp);
  EXPECT_TRUE(second.at("cached").as_bool());

  // The served value matches a local solve of the same instance.
  const CycleResult local =
      minimum_cycle_mean(g, *SolverRegistry::instance().create("howard"));
  EXPECT_EQ(first.at("result").at("value_num").as_double(),
            static_cast<double>(local.value.num()));
  EXPECT_EQ(first.at("result").at("value_den").as_double(),
            static_cast<double>(local.value.den()));
  // Cached responses replay the original solve's wall time so the
  // result object is byte-stable.
  EXPECT_EQ(first.at("result").at("milliseconds").as_double(),
            second.at("result").at("milliseconds").as_double());

  const json::Value stats = client.stats();
  ASSERT_EQ(stats.string_or("status", ""), "ok");
  EXPECT_TRUE(stats.at("metrics").is_object());
  EXPECT_NE(stats.at("prometheus").as_string().find("mcr_requests_total"),
            std::string::npos);

  const json::Value solvers = client.request(R"({"verb":"SOLVERS"})");
  bool saw_howard = false;
  for (const json::Value& s : solvers.at("solvers").as_array()) {
    if (s.at("name").as_string() == "howard") saw_howard = true;
  }
  EXPECT_TRUE(saw_howard);

  server.stop_and_drain();
  EXPECT_FALSE(server.running());
}

TEST(SvcServer, StatsWindowUptimeBuildAndSaturationGauges) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.stats_window_s = 300.0;  // the whole test stays inside one window
  svc::Server server(so);
  server.start();
  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);

  const Graph g = make_ring(32, 5);
  const std::string fp = client.load_dimacs_text(dimacs_text(g));
  ASSERT_EQ(client.solve(fp).string_or("status", ""), "ok");
  ASSERT_EQ(client.solve(fp).string_or("status", ""), "ok");

  // Plain STATS now reports uptime and build provenance, but pays for
  // the windowed merge only on request.
  const json::Value plain = client.stats();
  ASSERT_EQ(plain.string_or("status", ""), "ok");
  EXPECT_GT(plain.number_or("uptime_seconds", -1.0), 0.0);
  ASSERT_TRUE(plain.has("build"));
  EXPECT_FALSE(plain.at("build").string_or("compiler", "").empty());
  EXPECT_GE(plain.at("build").number_or("hardware_threads", -1.0), 1.0);
  EXPECT_FALSE(plain.has("window"));
  EXPECT_NE(plain.at("prometheus").as_string().find("mcr_build_info{"),
            std::string::npos);

  const json::Value windowed = client.stats(/*window=*/true);
  ASSERT_TRUE(windowed.has("window"));
  const json::Value& w = windowed.at("window");
  EXPECT_DOUBLE_EQ(w.number_or("window_seconds", 0.0), 300.0);
  const json::Value& verbs = w.at("verbs");
  ASSERT_TRUE(verbs.has("(all)"));
  ASSERT_TRUE(verbs.has("SOLVE"));
  EXPECT_GE(verbs.at("SOLVE").number_or("count", 0.0), 2.0);
  // With observations in the window every percentile is a number, and
  // the tail bounds the median.
  ASSERT_TRUE(verbs.at("SOLVE").at("p50_ms").is_number());
  ASSERT_TRUE(verbs.at("SOLVE").at("p99_ms").is_number());
  EXPECT_LE(verbs.at("SOLVE").at("p50_ms").as_double(),
            verbs.at("SOLVE").at("p99_ms").as_double());

  // Saturation gauges: the two solves each passed through the queue, so
  // the high-water mark moved; the snapshot connection is live.
  const json::Value& gauges = windowed.at("metrics").at("gauges");
  EXPECT_GE(gauges.number_or("mcr_queue_depth_highwater", -1.0), 1.0);
  EXPECT_GE(gauges.number_or("mcr_active_connections", 0.0), 1.0);
  EXPECT_GE(gauges.number_or("mcr_in_flight", -1.0), 0.0);

  server.stop_and_drain();
}

TEST(SvcServer, TelemetrySnapshotJsonIsDeltaBasedAndPumpWritesJsonl) {
  const std::string stats_path = unique_socket_path() + ".stats.jsonl";
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.stats_interval_s = 10.0;  // one tick at drain; the test drives the
  so.stats_out_path = stats_path;  // rest synchronously
  svc::Server server(so);
  server.start();
  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);

  const Graph g = make_ring(16, 3);
  const std::string fp = client.load_dimacs_text(dimacs_text(g));
  ASSERT_EQ(client.solve(fp).string_or("status", ""), "ok");

  // First snapshot: deltas equal the raw counters (empty baseline).
  const json::Value first = json::parse(server.telemetry_snapshot_json());
  EXPECT_GT(first.number_or("ts_ms", 0.0), 0.0);
  EXPECT_GT(first.number_or("uptime_seconds", -1.0), 0.0);
  const double solves_first = first.at("counters_delta")
                                  .number_or("mcr_requests_total{verb=\"SOLVE\"}", -1.0);
  EXPECT_EQ(solves_first, 1.0);
  ASSERT_TRUE(first.at("window").at("verbs").has("SOLVE"));
  // The info gauge is provenance, not telemetry: filtered from lines.
  EXPECT_EQ(server.telemetry_snapshot_json().find("mcr_build_info"),
            std::string::npos);

  // Second snapshot after one more solve: the delta is 1, not 2 — each
  // line advances the baseline.
  ASSERT_EQ(client.solve(fp).string_or("status", ""), "ok");
  const json::Value second = json::parse(server.telemetry_snapshot_json());
  EXPECT_EQ(second.at("counters_delta")
                .number_or("mcr_requests_total{verb=\"SOLVE\"}", -1.0),
            1.0);

  // Drain writes a final line, so even a shorter-than-interval run
  // leaves a parseable, non-empty time series.
  server.stop_and_drain();
  std::ifstream in(stats_path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(json::parse(line).has("window"), true) << line;
  }
  EXPECT_GE(lines, 1u);
  ::unlink(stats_path.c_str());
}

TEST(SvcServer, TcpListenerOnEphemeralPort) {
  svc::ServerOptions so;
  so.tcp_port = 0;  // ephemeral
  svc::Server server(so);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  svc::Client client = svc::Client::connect_tcp(server.tcp_port());
  EXPECT_TRUE(client.ping());
  const Graph g = make_ring(8, 2);
  const std::string fp = client.load_dimacs_text(dimacs_text(g));
  EXPECT_EQ(client.solve(fp).string_or("status", ""), "ok");
  server.stop_and_drain();
}

TEST(SvcServer, TcpBindAddressIsConfigurable) {
  // --listen HOST:PORT plumbing: bind the wildcard address on an
  // ephemeral port and talk to it over loopback (a worker sitting
  // behind an mcr_router on another machine binds exactly like this).
  svc::ServerOptions so;
  so.tcp_bind_host = "0.0.0.0";
  so.tcp_port = 0;
  svc::Server server(so);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  svc::Client client = svc::Client::connect_tcp("127.0.0.1", server.tcp_port());
  EXPECT_TRUE(client.ping());
  server.stop_and_drain();

  // An unresolvable bind host fails loudly at start(), not at the first
  // request.
  svc::ServerOptions bad;
  bad.tcp_bind_host = "no.such.host.invalid";
  bad.tcp_port = 0;
  svc::Server unbindable(bad);
  EXPECT_THROW(unbindable.start(), std::runtime_error);
}

TEST(SvcServer, ErrorsAreExplicitAndConnectionSurvives) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  svc::Server server(so);
  server.start();
  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);

  // Unknown fingerprint.
  json::Value r = client.solve(std::string(32, '0'));
  EXPECT_EQ(r.string_or("code", ""), "NOT_FOUND");

  // Unknown algorithm lists the registered solvers.
  const std::string fp = client.load_dimacs_text(dimacs_text(make_ring(8, 1)));
  r = client.solve(fp, "min_mean", "definitely_not_a_solver");
  EXPECT_EQ(r.string_or("code", ""), "BAD_REQUEST");
  EXPECT_NE(r.string_or("message", "").find("registered solvers:"),
            std::string::npos);
  EXPECT_NE(r.string_or("message", "").find("howard"), std::string::npos);

  // Solver kind vs objective mismatch.
  r = client.solve(fp, "min_ratio", "howard");
  EXPECT_EQ(r.string_or("code", ""), "BAD_REQUEST");

  // Malformed JSON payload.
  r = client.request("this is not json");
  EXPECT_EQ(r.string_or("status", ""), "error");
  EXPECT_EQ(r.string_or("code", ""), "BAD_REQUEST");

  // Unknown verb.
  r = client.request(R"({"verb":"EXPLODE"})");
  EXPECT_EQ(r.string_or("code", ""), "BAD_REQUEST");

  // After all of the above the same connection still serves.
  EXPECT_TRUE(client.ping());
  server.stop_and_drain();
}

// The ISSUE acceptance test: the same solve from 8 concurrent clients
// runs exactly one underlying solve, and every response carries a
// byte-identical result object.
TEST(SvcServer, EightConcurrentClientsOneUnderlyingSolve) {
  ensure_sleepy_solvers();
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  svc::Server server(so);
  server.start();

  const Graph g = make_ring(16, 4);
  const std::string fp = [&] {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    return c.load_dimacs_text(dimacs_text(g));
  }();

  constexpr int kClients = 8;
  std::vector<std::string> raw(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
      raw[static_cast<std::size_t>(i)] = c.request_raw(
          R"({"verb":"SOLVE","fingerprint":")" + fp +
          R"(","objective":"min_mean","algo":"test_sleepy"})");
    });
  }
  for (std::thread& t : threads) t.join();

  // Every response succeeded and carries the identical result object
  // (the response prefix differs only in the "cached" flag).
  std::vector<std::string> results;
  for (const std::string& response : raw) {
    const json::Value v = json::parse(response);
    ASSERT_EQ(v.string_or("status", ""), "ok") << response;
    const std::size_t pos = response.find("\"result\":");
    ASSERT_NE(pos, std::string::npos);
    results.push_back(response.substr(pos));
  }
  for (const std::string& r : results) EXPECT_EQ(r, results.front());

  // Exactly one solve ran; the other seven were cache hits or flight
  // joiners.
  EXPECT_EQ(server.metrics().counter("mcr_solves_total").value(), 1u);
  const std::uint64_t hits =
      server.metrics().counter("mcr_cache_hits_total").value();
  const std::uint64_t joins =
      server.metrics().counter("mcr_singleflight_joins_total").value();
  EXPECT_EQ(hits + joins, 7u);

  server.stop_and_drain();
}

// The ISSUE backpressure test: queue capacity K, K + j concurrent slow
// distinct solves → j explicit BUSY rejections and mcr_rejected_total
// == j; every request gets an answer (no hangs, no drops).
TEST(SvcServer, BackpressureRejectsBeyondCapacity) {
  ensure_sleepy_solvers();
  constexpr std::size_t kCapacity = 2;
  constexpr int kRequests = 5;  // j = 3 rejections

  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.queue_capacity = kCapacity;
  svc::Server server(so);
  server.start();

  // Distinct graphs → distinct cache keys, so single-flight cannot
  // deduplicate them away.
  std::vector<std::string> fps;
  {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    for (int i = 0; i < kRequests; ++i) {
      fps.push_back(c.load_dimacs_text(dimacs_text(make_ring(8, 10 * (i + 1)))));
    }
  }

  std::vector<std::string> codes(kRequests);
  std::vector<std::thread> threads;
  threads.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    threads.emplace_back([&, i] {
      svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
      const json::Value v =
          c.solve(fps[static_cast<std::size_t>(i)], "min_mean", "test_sleepy");
      codes[static_cast<std::size_t>(i)] = v.string_or("status", "") == "ok"
                                               ? "OK"
                                               : v.string_or("code", "?");
    });
  }
  for (std::thread& t : threads) t.join();

  int ok = 0;
  int busy = 0;
  for (const std::string& code : codes) {
    if (code == "OK") ++ok;
    if (code == "BUSY") ++busy;
  }
  EXPECT_EQ(ok, static_cast<int>(kCapacity));
  EXPECT_EQ(busy, kRequests - static_cast<int>(kCapacity));
  EXPECT_EQ(server.metrics().counter("mcr_rejected_total").value(),
            static_cast<std::uint64_t>(kRequests) - kCapacity);

  server.stop_and_drain();
}

TEST(SvcServer, DeadlineExpiresWhileQueuedOrBeforeSolve) {
  ensure_sleepy_solvers();
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  svc::Server server(so);
  server.start();

  std::vector<std::string> fps;
  {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    fps.push_back(c.load_dimacs_text(dimacs_text(make_ring(8, 1))));
    fps.push_back(c.load_dimacs_text(dimacs_text(make_ring(8, 2))));
  }

  // Occupy the dispatcher with a slow solve, then submit a second slow
  // solve (different algorithm name → different dispatch group, so it
  // is never batched into the first) with a deadline far shorter than
  // the dispatcher's busy window. Whether it expires while queued or at
  // the driver's entry check, the client gets DEADLINE_EXCEEDED.
  std::thread occupant([&] {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    const json::Value v = c.solve(fps[0], "min_mean", "test_sleepy");
    EXPECT_EQ(v.string_or("status", ""), "ok");
  });
  std::this_thread::sleep_for(80ms);

  svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
  const json::Value v = c.solve(fps[1], "min_mean", "test_sleepy2",
                                /*deadline_ms=*/100.0);
  EXPECT_EQ(v.string_or("code", ""), "DEADLINE_EXCEEDED");

  occupant.join();
  EXPECT_GE(server.metrics().counter("mcr_deadline_cancelled_total").value(), 1u);
  server.stop_and_drain();
}

TEST(SvcServer, DeadlineCancelsMidSolveAtComponentBoundary) {
  ensure_sleepy_solvers();
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.solve_threads = 1;  // serial driver: components run one after another
  svc::Server server(so);
  server.start();

  // Four disjoint self-loops = four cyclic SCCs; the sleepy solver
  // spends kNap per component, and the driver polls the cancel token
  // between components. Deadline of 1.5 naps → cancelled at the second
  // or third component boundary, long before the 4-nap full solve.
  GraphBuilder b(4);
  for (NodeId u = 0; u < 4; ++u) b.add_arc(u, u, 1 + u);

  svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
  const std::string fp = c.load_dimacs_text(dimacs_text(b.build()));
  const auto started = std::chrono::steady_clock::now();
  const json::Value v =
      c.solve(fp, "min_mean", "test_sleepy",
              std::chrono::duration_cast<std::chrono::milliseconds>(kNap).count() * 1.5);
  const auto elapsed = std::chrono::steady_clock::now() - started;

  EXPECT_EQ(v.string_or("code", ""), "DEADLINE_EXCEEDED");
  EXPECT_LT(elapsed, 4 * kNap);  // cancelled well before a full solve
  EXPECT_GE(server.metrics().counter("mcr_deadline_cancelled_total").value(), 1u);
  server.stop_and_drain();
}

TEST(SvcServer, DrainCompletesInFlightRequests) {
  ensure_sleepy_solvers();
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  svc::Server server(so);
  server.start();

  const std::string fp = [&] {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    return c.load_dimacs_text(dimacs_text(make_ring(8, 3)));
  }();

  std::string status;
  std::thread in_flight([&] {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    status = c.solve(fp, "min_mean", "test_sleepy").string_or("status", "");
  });
  std::this_thread::sleep_for(80ms);  // request is solving by now

  server.stop_and_drain();  // must wait for the in-flight solve
  in_flight.join();
  EXPECT_EQ(status, "ok");
  EXPECT_FALSE(server.running());

  // The socket is gone: new connections are refused.
  EXPECT_THROW((void)svc::Client::connect_unix(so.unix_socket_path),
               std::runtime_error);
}

TEST(SvcServer, HealthVerbReportsLivenessAndQueueState) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.queue_capacity = 17;
  svc::Server server(so);
  server.start();

  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);
  const json::Value before = client.health();
  ASSERT_EQ(before.string_or("status", ""), "ok");
  EXPECT_TRUE(before.at("healthy").as_bool());
  EXPECT_FALSE(before.at("draining").as_bool());
  EXPECT_EQ(before.at("queue_depth").as_double(), 0.0);
  EXPECT_EQ(before.at("in_flight").as_double(), 0.0);
  EXPECT_EQ(before.at("queue_capacity").as_double(), 17.0);
  EXPECT_GE(before.at("connections").as_double(), 1.0);  // at least ours
  EXPECT_GE(before.at("uptime_seconds").as_double(), 0.0);
  // No solve has completed yet: the age sentinel is -1.
  EXPECT_EQ(before.at("last_solve_age_seconds").as_double(), -1.0);

  const std::string fp = client.load_dimacs_text(dimacs_text(make_ring(8, 3)));
  ASSERT_EQ(client.solve(fp).string_or("status", ""), "ok");
  const json::Value after = client.health();
  EXPECT_GE(after.at("last_solve_age_seconds").as_double(), 0.0);

  server.stop_and_drain();
}

TEST(SvcServer, IdleReaperShutsDownStaleConnections) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.idle_timeout_ms = 100;  // reaper tick is 200ms in accept_loop
  svc::Server server(so);
  server.start();

  svc::Client idle = svc::Client::connect_unix(so.unix_socket_path);
  EXPECT_TRUE(idle.ping());  // connection established and serviced once

  // Wait past the timeout plus one reaper tick: the server must
  // half-close the idle connection, so the next request fails at the
  // transport layer rather than hanging.
  std::this_thread::sleep_for(600ms);
  EXPECT_THROW((void)idle.ping(), svc::TransportError);
  EXPECT_GE(server.metrics().counter("mcr_idle_reaped_total").value(), 1u);

  // A fresh connection still works: reaping is per-connection hygiene,
  // not a server-wide degradation.
  svc::Client fresh = svc::Client::connect_unix(so.unix_socket_path);
  EXPECT_TRUE(fresh.ping());
  server.stop_and_drain();
}

// ---------------------------------------------------------------------------
// Trace context on the wire, the flight recorder, TRACE, request logs.

TEST(TraceContext, GeneratedIdsAreValidAndDistinct) {
  const std::string a = svc::generate_trace_id();
  const std::string b = svc::generate_trace_id();
  EXPECT_EQ(a.size(), 32u);
  EXPECT_NE(a, b);
  EXPECT_TRUE(svc::is_valid_trace_id(a));
  EXPECT_TRUE(svc::is_valid_trace_id(b));
}

TEST(TraceContext, ValidatorAcceptsTokenCharsOnly) {
  EXPECT_TRUE(svc::is_valid_trace_id("abc-123_XYZ"));
  EXPECT_TRUE(svc::is_valid_trace_id("a"));
  EXPECT_FALSE(svc::is_valid_trace_id(""));
  EXPECT_FALSE(svc::is_valid_trace_id("has space"));
  EXPECT_FALSE(svc::is_valid_trace_id("quote\"inside"));
  EXPECT_FALSE(svc::is_valid_trace_id(std::string(svc::kMaxTraceIdBytes + 1, 'a')));
  EXPECT_TRUE(svc::is_valid_trace_id(std::string(svc::kMaxTraceIdBytes, 'a')));
}

TEST(TraceContext, WithTraceIdSplicesAtTheFront) {
  // The id leads the object so existing consumers that slice from the
  // *last* field ("result", "chrome_trace") keep working unchanged.
  EXPECT_EQ(svc::with_trace_id("{\"status\":\"ok\"}", "t1"),
            "{\"trace_id\":\"t1\",\"status\":\"ok\"}");
  EXPECT_EQ(svc::with_trace_id("{}", "t2"), "{\"trace_id\":\"t2\"}");
}

TEST(SvcTrace, ServerEchoesMintsAndRejectsWireTraceIds) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.flight.slow_ms = 0.0;  // pin everything
  svc::Server server(so);
  server.start();
  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);

  // Caller-supplied id: echoed verbatim, spliced at the response front.
  const std::string echoed = client.request_raw(
      R"({"verb":"PING","trace_id":"caller-id-1"})");
  EXPECT_EQ(echoed.rfind("{\"trace_id\":\"caller-id-1\",", 0), 0u) << echoed;

  // No id on the wire: the server mints one and still reports it.
  const json::Value minted = json::parse(client.request_raw(R"({"verb":"PING"})"));
  const std::string minted_id = minted.string_or("trace_id", "");
  EXPECT_EQ(minted_id.size(), 32u);
  EXPECT_TRUE(svc::is_valid_trace_id(minted_id));

  // A malformed id is a BAD_REQUEST; the error response carries a
  // server-minted id so even the rejection is traceable.
  const json::Value rejected = json::parse(client.request_raw(
      R"({"verb":"PING","trace_id":"not ok!"})"));
  EXPECT_EQ(rejected.string_or("code", ""), "BAD_REQUEST");
  EXPECT_TRUE(svc::is_valid_trace_id(rejected.string_or("trace_id", "")));
  EXPECT_NE(rejected.string_or("trace_id", ""), "not ok!");

  // Errors always pin: both traceable requests above are retrievable.
  EXPECT_GE(server.flight().pinned_size(), 1u);
  server.stop_and_drain();
}

TEST(SvcTrace, TraceVerbServesQueueAndDispatchSpans) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.flight.slow_ms = 0.0;
  so.flight.sample_rate = 1.0;  // full solver detail for every request
  svc::Server server(so);
  server.start();
  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);

  client.set_trace_id("e2e-solve-trace");
  const std::string fp = client.load_dimacs_text(dimacs_text(make_ring(16, 2)));
  ASSERT_EQ(client.solve(fp).string_or("status", ""), "ok");

  client.set_trace_id("");  // the TRACE request gets its own context
  const std::string raw = client.request_raw(
      R"({"verb":"TRACE","id":"e2e-solve-trace"})");
  const json::Value v = json::parse(raw);
  ASSERT_EQ(v.string_or("status", ""), "ok");
  EXPECT_EQ(v.at("count").as_double(), 2.0);  // the LOAD and the SOLVE
  EXPECT_GE(v.at("ring_size").as_double(), 2.0);
  EXPECT_GE(v.at("finished_total").as_double(), 2.0);
  ASSERT_TRUE(v.at("chrome_trace").is_object());
  // The solve's life-cycle spans are all present in the export: the
  // request envelope, the queue wait, and the dispatch with solver
  // detail (sampled at 1.0, so component spans ride along).
  EXPECT_NE(raw.find("\"cat\":\"request\""), std::string::npos);
  EXPECT_NE(raw.find("\"cat\":\"queue\""), std::string::npos);
  EXPECT_NE(raw.find("\"cat\":\"dispatch\""), std::string::npos);
  EXPECT_NE(raw.find("\"cat\":\"solve\""), std::string::npos);
  EXPECT_NE(raw.find("e2e-solve-trace"), std::string::npos);
  server.stop_and_drain();
}

TEST(SvcTrace, TraceVerbFiltersByVerbAndDuration) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.flight.slow_ms = 0.0;
  svc::Server server(so);
  server.start();
  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);

  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.ping());
  const std::string fp = client.load_dimacs_text(dimacs_text(make_ring(8, 1)));
  ASSERT_EQ(client.solve(fp).string_or("status", ""), "ok");

  json::Value v = json::parse(client.request_raw(
      R"({"verb":"TRACE","match_verb":"SOLVE"})"));
  EXPECT_EQ(v.at("count").as_double(), 1.0);
  v = json::parse(client.request_raw(R"({"verb":"TRACE","match_verb":"PING"})"));
  EXPECT_EQ(v.at("count").as_double(), 2.0);
  // An impossible duration floor matches nothing but still answers ok.
  v = json::parse(client.request_raw(R"({"verb":"TRACE","min_ms":1e9})"));
  EXPECT_EQ(v.string_or("status", ""), "ok");
  EXPECT_EQ(v.at("count").as_double(), 0.0);
  // limit trims to the newest traces.
  v = json::parse(client.request_raw(R"({"verb":"TRACE","limit":1})"));
  EXPECT_EQ(v.at("count").as_double(), 1.0);
  server.stop_and_drain();
}

// TRACE under load: concurrent clients fetch the ring while solves are
// in flight (this file runs under TSan in CI — the assertion here is
// mostly "no data races, every response parses").
TEST(SvcTrace, ConcurrentTraceFetchesDuringLiveSolves) {
  ensure_sleepy_solvers();
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.flight.slow_ms = 0.0;
  so.flight.sample_rate = 1.0;
  // Every TRACE request is itself recorded, and the fetchers below issue
  // thousands of them while the solves sleep — size the ring so the
  // flood cannot evict the two SOLVE traces before the final check.
  so.flight.capacity = 1 << 16;
  svc::Server server(so);
  server.start();

  std::vector<std::string> fps;
  {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    fps.push_back(c.load_dimacs_text(dimacs_text(make_ring(8, 1))));
    fps.push_back(c.load_dimacs_text(dimacs_text(make_ring(8, 2))));
  }

  std::atomic<int> solving{2};
  std::vector<std::thread> solvers;
  solvers.reserve(2);
  for (int i = 0; i < 2; ++i) {
    solvers.emplace_back([&, i] {
      svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
      const json::Value v = c.solve(fps[static_cast<std::size_t>(i)], "min_mean",
                                    i == 0 ? "test_sleepy" : "test_sleepy2");
      EXPECT_EQ(v.string_or("status", ""), "ok");
      solving.fetch_sub(1, std::memory_order_release);
    });
  }
  std::vector<std::thread> fetchers;
  fetchers.reserve(2);
  for (int f = 0; f < 2; ++f) {
    fetchers.emplace_back([&] {
      svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
      while (solving.load(std::memory_order_acquire) > 0) {
        const json::Value v = c.request(R"({"verb":"TRACE"})");
        EXPECT_EQ(v.string_or("status", ""), "ok");
      }
    });
  }
  for (std::thread& t : solvers) t.join();
  for (std::thread& t : fetchers) t.join();

  // Both solves are now retained and exportable.
  svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
  const json::Value v = c.request(R"({"verb":"TRACE","match_verb":"SOLVE"})");
  EXPECT_EQ(v.at("count").as_double(), 2.0);
  server.stop_and_drain();
}

// A retried flight keeps one trace id across attempts, each attempt a
// child span ("attempt/<k>"), so the server-side ring shows the whole
// story: the BUSY rejections and the final success, under one id.
TEST(SvcTrace, RetryReusesFlightTraceIdWithAttemptSpans) {
  ensure_sleepy_solvers();
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.queue_capacity = 1;
  so.flight.slow_ms = 0.0;
  svc::Server server(so);
  server.start();

  std::vector<std::string> fps;
  {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    fps.push_back(c.load_dimacs_text(dimacs_text(make_ring(8, 1))));
    fps.push_back(c.load_dimacs_text(dimacs_text(make_ring(8, 2))));
  }

  // Fill the single admission slot with a slow solve...
  std::thread occupant([&] {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    EXPECT_EQ(c.solve(fps[0], "min_mean", "test_sleepy").string_or("status", ""),
              "ok");
  });
  std::this_thread::sleep_for(80ms);

  // ...so the retrying client draws at least one BUSY before it lands.
  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);
  svc::RetryPolicy policy;
  policy.max_attempts = 20;
  policy.initial_backoff_ms = 40.0;
  policy.max_backoff_ms = 80.0;
  policy.budget_ms = 20'000.0;
  client.set_retry_policy(policy);
  client.set_trace_id("retry-flight-1");
  const json::Value r = client.solve_retry(fps[1], "min_mean", "howard");
  EXPECT_EQ(r.string_or("status", ""), "ok");
  EXPECT_EQ(r.string_or("trace_id", ""), "retry-flight-1");
  occupant.join();

  client.set_trace_id("");
  const std::string raw =
      client.request_raw(R"({"verb":"TRACE","id":"retry-flight-1"})");
  const json::Value v = json::parse(raw);
  ASSERT_EQ(v.string_or("status", ""), "ok");
  EXPECT_GE(v.at("count").as_double(), 2.0);  // >= one BUSY + the success
  EXPECT_NE(raw.find("\"parent_span\":\"attempt/1\""), std::string::npos) << raw;
  server.stop_and_drain();
}

TEST(RequestLogFormat, OmitsEmptyStringsAndNegativeDurations) {
  svc::RequestLog::Entry e;
  e.ts_ms = 1500.25;
  e.trace_id = "t1";
  e.verb = "SOLVE";
  e.cache = "miss";
  e.queue_ms = 0.5;
  e.solve_ms = 2.0;
  e.total_ms = 3.25;
  // fingerprint/algo/objective empty, deadline_ms negative: all absent;
  // "code" present even when empty so successes are greppable.
  EXPECT_EQ(svc::RequestLog::format(e),
            "{\"ts_ms\":1500.25,\"trace_id\":\"t1\",\"verb\":\"SOLVE\","
            "\"cache\":\"miss\",\"queue_ms\":0.5,\"solve_ms\":2,"
            "\"code\":\"\",\"total_ms\":3.25}");
  e.code = "BUSY";
  e.deadline_ms = 100.0;
  EXPECT_NE(svc::RequestLog::format(e).find("\"deadline_ms\":100,\"code\":\"BUSY\""),
            std::string::npos);
}

TEST(SvcTrace, RequestLogWritesOneJsonLinePerRequest) {
  const std::string log_path = unique_socket_path() + ".jsonl";
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.request_log_path = log_path;
  svc::Server server(so);
  server.start();

  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);
  EXPECT_TRUE(client.ping());
  const std::string fp = client.load_dimacs_text(dimacs_text(make_ring(8, 4)));
  ASSERT_EQ(client.solve(fp).string_or("status", ""), "ok");        // miss
  ASSERT_EQ(client.solve(fp).string_or("status", ""), "ok");        // hit
  EXPECT_EQ(client.solve(std::string(32, '0')).string_or("code", ""),
            "NOT_FOUND");
  server.stop_and_drain();

  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open());
  std::vector<json::Value> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(json::parse(line));
  }
  ASSERT_EQ(lines.size(), 5u);
  for (const json::Value& entry : lines) {
    EXPECT_FALSE(entry.string_or("trace_id", "").empty());
    EXPECT_FALSE(entry.string_or("verb", "").empty());
    EXPECT_TRUE(entry.has("code"));  // "" on success, typed code on error
    EXPECT_GE(entry.at("total_ms").as_double(), 0.0);
  }
  EXPECT_EQ(lines[0].string_or("verb", ""), "PING");
  EXPECT_EQ(lines[1].string_or("verb", ""), "LOAD");
  EXPECT_EQ(lines[2].string_or("cache", ""), "miss");
  EXPECT_GE(lines[2].at("solve_ms").as_double(), 0.0);
  EXPECT_GE(lines[2].at("queue_ms").as_double(), 0.0);
  EXPECT_EQ(lines[2].string_or("fingerprint", ""), fp);
  EXPECT_EQ(lines[3].string_or("cache", ""), "hit");
  EXPECT_EQ(lines[4].string_or("code", ""), "NOT_FOUND");
  ::unlink(log_path.c_str());
}

// ---------------------------------------------------------------------------
// Frame fuzzer (satellite: protocol robustness under ASan).

TEST(FrameFuzz, TruncatedHeadersAbsurdLengthsAndGarbage) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.max_frame_bytes = 64 * 1024;
  svc::Server server(so);
  server.start();

  // Truncated header: a few bytes, then hang up.
  {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    c.send_bytes(std::string("MC", 2));
  }
  // Absurd length prefix: explicit FRAME_TOO_LARGE, then close.
  {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    c.send_bytes(std::string("MCR1\xff\xff\xff\x7f", 8));
    const json::Value v = json::parse(c.read_payload());
    EXPECT_EQ(v.string_or("code", ""), "FRAME_TOO_LARGE");
    EXPECT_THROW((void)c.read_payload(), std::runtime_error);  // closed
  }
  // Bad magic: explicit BAD_FRAME, then close.
  {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    c.send_bytes(std::string("GET /metrics HTTP/1.1\r\n\r\n"));
    const json::Value v = json::parse(c.read_payload());
    EXPECT_EQ(v.string_or("code", ""), "BAD_FRAME");
  }

  Prng rng(0xF0221);
  // Well-framed garbage payloads: every one answers an explicit error
  // on a connection that stays up.
  {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    for (int iter = 0; iter < 100; ++iter) {
      std::string garbage(static_cast<std::size_t>(rng.uniform_int(1, 512)), '\0');
      for (char& ch : garbage) {
        ch = static_cast<char>(rng.uniform_int(0, 255));
      }
      const json::Value v = json::parse(c.request_raw(garbage));
      EXPECT_EQ(v.string_or("status", ""), "error");
    }
    EXPECT_TRUE(c.ping());  // same connection still serves
  }
  // Raw unframed byte streams on fresh connections.
  for (int iter = 0; iter < 20; ++iter) {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    std::string noise(static_cast<std::size_t>(rng.uniform_int(1, 64)), '\0');
    for (char& ch : noise) ch = static_cast<char>(rng.uniform_int(0, 255));
    c.send_bytes(noise);
  }

  // The server survived everything above.
  svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
  EXPECT_TRUE(c.ping());
  EXPECT_GE(server.metrics().counter("mcr_bad_frames_total").value(), 2u);
  server.stop_and_drain();
}

// ---------------------------------------------------------------------------
// Versioned datasets: --dataset attach at startup, RELOAD hot-swap.

/// A /tmp pack written from a graph, removed on scope exit.
struct TempPackFile {
  explicit TempPackFile(const Graph& g) {
    static std::atomic<int> counter{0};
    path = "/tmp/mcr_svc_pack_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".mcrpack";
    store::write_pack(path, g);
  }
  ~TempPackFile() { std::remove(path.c_str()); }
  TempPackFile(const TempPackFile&) = delete;
  TempPackFile& operator=(const TempPackFile&) = delete;
  std::string path;
};

TEST(SvcDataset, AttachAtStartupThenHotSwapServesBothGenerations) {
  const Graph ga = make_ring(24, 7);
  const Graph gb = make_ring(40, 11);
  const std::string fp_a = fingerprint_hex(ga);
  const std::string fp_b = fingerprint_hex(gb);
  TempPackFile pack_a(ga), pack_b(gb);

  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.dataset_path = pack_a.path;
  svc::Server server(so);
  server.start();
  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);

  // Generation 1 is resident at startup: solvable with no LOAD, and
  // bit-equal to a local solve of the same content.
  const json::Value first = client.solve(fp_a);
  ASSERT_EQ(first.string_or("status", ""), "ok");
  const CycleResult local_a =
      minimum_cycle_mean(ga, *SolverRegistry::instance().create("howard"));
  EXPECT_EQ(first.at("result").at("value_num").as_double(),
            static_cast<double>(local_a.value.num()));
  json::Value stats = client.stats();
  ASSERT_TRUE(stats.has("dataset"));
  EXPECT_EQ(stats.at("dataset").at("generation").as_double(), 1.0);
  EXPECT_EQ(stats.at("dataset").at("fingerprint").as_string(), fp_a);

  // Hot-swap to pack B. The response names B's fingerprint and the
  // bumped generation.
  const json::Value swapped = client.reload(pack_b.path);
  ASSERT_EQ(swapped.string_or("status", ""), "ok");
  EXPECT_EQ(swapped.at("fingerprint").as_string(), fp_b);
  EXPECT_EQ(swapped.at("generation").as_double(), 2.0);

  // Post-swap solves hit B; A's content and cache entry stay valid.
  const json::Value post = client.solve(fp_b);
  ASSERT_EQ(post.string_or("status", ""), "ok");
  const CycleResult local_b =
      minimum_cycle_mean(gb, *SolverRegistry::instance().create("howard"));
  EXPECT_EQ(post.at("result").at("value_num").as_double(),
            static_cast<double>(local_b.value.num()));
  const json::Value replay = client.solve(fp_a);
  ASSERT_EQ(replay.string_or("status", ""), "ok");
  EXPECT_TRUE(replay.at("cached").as_bool());

  stats = client.stats();
  EXPECT_EQ(stats.at("dataset").at("generation").as_double(), 2.0);
  EXPECT_EQ(stats.at("dataset").at("fingerprint").as_string(), fp_b);
  EXPECT_EQ(stats.at("dataset").at("path").as_string(), pack_b.path);

  server.stop_and_drain();
}

TEST(SvcDataset, FailedReloadAnswersBadRequestAndKeepsServing) {
  const Graph ga = make_ring(24, 3);
  TempPackFile pack_a(ga);
  // A corrupt pack: one payload byte flipped fails the checksum.
  std::string bytes;
  {
    std::ifstream is(pack_a.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x10);
  const std::string corrupt_path = pack_a.path + ".corrupt";
  {
    std::ofstream os(corrupt_path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.dataset_path = pack_a.path;
  svc::Server server(so);
  server.start();
  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);

  const json::Value rejected = client.reload(corrupt_path);
  EXPECT_EQ(rejected.string_or("status", ""), "error");
  EXPECT_EQ(rejected.string_or("code", ""), "BAD_REQUEST");
  EXPECT_NE(rejected.string_or("message", "").find("checksum"),
            std::string::npos);

  // The old generation is untouched and still serves.
  const json::Value stats = client.stats();
  EXPECT_EQ(stats.at("dataset").at("generation").as_double(), 1.0);
  EXPECT_EQ(client.solve(fingerprint_hex(ga)).string_or("status", ""), "ok");

  std::remove(corrupt_path.c_str());
  server.stop_and_drain();
}

TEST(SvcDataset, ReloadWithoutDatasetOrPathIsBadRequest) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  svc::Server server(so);
  server.start();
  svc::Client client = svc::Client::connect_unix(so.unix_socket_path);
  const json::Value v = client.reload();
  EXPECT_EQ(v.string_or("status", ""), "error");
  EXPECT_EQ(v.string_or("code", ""), "BAD_REQUEST");
  server.stop_and_drain();
}

TEST(SvcDataset, ReloadDuringDrainIsRefused) {
  // The RELOAD/SIGHUP-vs-drain race: once stop_and_drain has begun, a
  // racing attach_dataset must NOT publish a generation that nothing
  // will ever serve. The server sets its drain guard *before* running_
  // flips, so observing running() == false makes this deterministic.
  ensure_sleepy_solvers();
  const Graph ga = make_ring(24, 7);
  const Graph gb = make_ring(40, 11);
  const std::string fp_a = fingerprint_hex(ga);
  TempPackFile pack_a(ga), pack_b(gb);

  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.dataset_path = pack_a.path;
  svc::Server server(so);
  server.start();

  // Park a slow solve in flight so the drain has something to wait on
  // while we race the attach.
  std::thread solver_thread([&] {
    svc::Client c = svc::Client::connect_unix(so.unix_socket_path);
    const json::Value r = c.solve(fp_a, "min_mean", "test_sleepy");
    EXPECT_EQ(r.string_or("status", ""), "ok");
  });
  while (server.metrics().gauge("mcr_in_flight").value() < 1) {
    std::this_thread::sleep_for(1ms);
  }

  std::thread drainer([&] { server.stop_and_drain(); });
  while (server.running()) std::this_thread::sleep_for(1ms);
  EXPECT_THROW((void)server.attach_dataset(pack_b.path), std::runtime_error);
  drainer.join();
  solver_thread.join();

  // The pre-drain generation is still the published one.
  const auto ds = server.dataset();
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->generation, 1u);
  EXPECT_EQ(ds->fingerprint, fp_a);
}

TEST(SvcDataset, StartupWithBadDatasetFailsLoudly) {
  svc::ServerOptions so;
  so.unix_socket_path = unique_socket_path();
  so.dataset_path = "/tmp/mcr_svc_pack_absent.mcrpack";
  svc::Server server(so);
  // A daemon told to serve a dataset it cannot attach must not come up
  // quietly empty.
  EXPECT_THROW(server.start(), store::PackError);
}

}  // namespace
