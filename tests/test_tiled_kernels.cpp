// Tiled relaxation kernels (graph/arc_tiles.h) — the contracts under
// test:
//   * ArcTilePartition covers every CSR position exactly once and every
//     node at least once, splits high-degree nodes across tiles, and
//     degrades to a single tile for target <= 0 or tiny inputs.
//   * The tiling property: CycleResult (value, witness cycle, counters)
//     is bit-identical across tile_arcs in {0, 64, 4096} x num_threads
//     in {1, 2, 8} on sprand / circuit / single-giant-SCC instances.
//   * Bellman-Ford's negative-cycle verdict, witness, and potentials
//     match the serial path under any tiling.
//   * mcr_pool_*_total accumulates once per pool lifetime (a solve_many
//     batch contributes exactly one task per instance, not one per
//     wait), and mcr_ops_tiles_* counters are thread-independent.
//   * The inline-vs-pool cutoff: a 1-component graph with many tiles
//     still engages the pool (tile mode).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/driver.h"
#include "core/registry.h"
#include "core/verify.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/arc_tiles.h"
#include "graph/bellman_ford.h"
#include "graph/builder.h"
#include "obs/metrics.h"
#include "support/thread_pool.h"

namespace mcr {
namespace {

// --- ArcTilePartition -------------------------------------------------

void expect_partition_invariants(std::span<const std::int32_t> first,
                                 std::int32_t target) {
  const ArcTilePartition part(first, target);
  const std::size_t n = first.size() - 1;
  const std::int32_t total = first[n];
  ASSERT_EQ(part.positions(), total);
  if (n == 0) {
    EXPECT_TRUE(part.tiles().empty());
    return;
  }
  std::int32_t next_pos = 0;
  NodeId next_node = 0;
  for (const ArcTile& t : part.tiles()) {
    // Positions are contiguous across tiles, nodes never skip.
    EXPECT_EQ(t.pos_begin, next_pos);
    EXPECT_LE(t.node_begin, t.node_end);
    EXPECT_TRUE(t.node_begin == next_node ||
                (t.shares_first && t.node_begin + 1 == next_node))
        << "node_begin " << t.node_begin << " next " << next_node;
    EXPECT_LE(t.pos_begin, t.pos_end);
    if (target > 0 && total > target) {
      EXPECT_LE(t.pos_end - t.pos_begin, target);
    }
    // Node range brackets the position range.
    EXPECT_LE(first[static_cast<std::size_t>(t.node_begin)], t.pos_begin);
    EXPECT_GE(first[static_cast<std::size_t>(t.node_end) + 1], t.pos_end);
    EXPECT_EQ(t.shares_first,
              t.pos_begin > first[static_cast<std::size_t>(t.node_begin)]);
    EXPECT_EQ(t.shares_last,
              first[static_cast<std::size_t>(t.node_end) + 1] > t.pos_end);
    next_pos = t.pos_end;
    next_node = t.shares_last ? t.node_end : t.node_end + 1;
  }
  EXPECT_EQ(next_pos, total);
  EXPECT_EQ(next_node, static_cast<NodeId>(n));  // every node covered
}

TEST(ArcTilePartition, InvariantsOnRealCsrArrays) {
  gen::SprandConfig sc;
  sc.n = 200;
  sc.m = 900;
  sc.seed = 5;
  const Graph g = gen::sprand(sc);
  for (const std::int32_t target : {1, 7, 64, 899, 900, 100000}) {
    expect_partition_invariants(g.in_first(), target);
    expect_partition_invariants(g.out_first(), target);
  }
}

TEST(ArcTilePartition, SplitsHighDegreeNode) {
  // A star: node 0 has 100 out-arcs, everyone else none.
  GraphBuilder b(101);
  for (NodeId v = 1; v <= 100; ++v) b.add_arc(0, v, 1, 1);
  const Graph g = b.build();
  expect_partition_invariants(g.out_first(), 16);
  const ArcTilePartition part(g.out_first(), 16);
  ASSERT_GE(part.size(), 7u);  // ceil(100/16)
  int covering_hub = 0;
  for (const ArcTile& t : part.tiles()) {
    if (t.node_begin == 0) ++covering_hub;
  }
  EXPECT_GE(covering_hub, 7);  // the hub is split, not serialized
  EXPECT_TRUE(part.tiles().front().shares_last);
  // Trailing zero-degree nodes ride in the final tile.
  EXPECT_EQ(part.tiles().back().node_end, 100);
}

TEST(ArcTilePartition, DegenerateTargetsAndInputs) {
  const std::vector<std::int32_t> first{0, 2, 2, 5};
  for (const std::int32_t target : {0, -3, 5, 100}) {
    const ArcTilePartition part(first, target);
    ASSERT_EQ(part.size(), 1u) << target;
    EXPECT_EQ(part.tiles()[0].node_begin, 0);
    EXPECT_EQ(part.tiles()[0].node_end, 2);
    EXPECT_EQ(part.tiles()[0].pos_begin, 0);
    EXPECT_EQ(part.tiles()[0].pos_end, 5);
    EXPECT_FALSE(part.tiles()[0].shares_first);
    EXPECT_FALSE(part.tiles()[0].shares_last);
  }
  const std::vector<std::int32_t> empty{0};
  EXPECT_TRUE(ArcTilePartition(empty, 8).tiles().empty());
  // All-zero-degree nodes: one tile, zero positions.
  const std::vector<std::int32_t> isolated{0, 0, 0, 0};
  const ArcTilePartition part(isolated, 4);
  ASSERT_EQ(part.size(), 1u);
  EXPECT_EQ(part.tiles()[0].node_end, 2);
}

// --- Tiling property: bit-identical results ---------------------------

void expect_identical(const CycleResult& a, const CycleResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.has_cycle, b.has_cycle) << what;
  if (!a.has_cycle) return;
  EXPECT_EQ(a.value, b.value) << what;
  EXPECT_EQ(a.cycle, b.cycle) << what;
  EXPECT_EQ(a.counters, b.counters) << what;
}

std::vector<Graph> tiling_instances(bool ratio) {
  std::vector<Graph> out;
  gen::SprandConfig sc;
  sc.n = 96;
  sc.m = 320;
  sc.seed = 11;
  if (ratio) {
    sc.min_transit = 1;
    sc.max_transit = 5;
  }
  out.push_back(gen::sprand(sc));
  // Single giant SCC: the shape the tentpole exists for.
  out.push_back(gen::torus(7, 7, 1, 1000, 13));
  if (!ratio) {
    gen::CircuitConfig cc;
    cc.registers = 60;
    cc.module_size = 6;
    cc.seed = 7;
    out.push_back(gen::circuit(cc));
  }
  return out;
}

TEST(TiledKernels, BitIdenticalAcrossTileSizesAndThreadsMean) {
  const auto graphs = tiling_instances(/*ratio=*/false);
  for (const std::string name : {"karp", "karp2", "howard", "lawler"}) {
    const auto solver = SolverRegistry::instance().create(name);
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const CycleResult reference = minimum_cycle_mean(graphs[gi], *solver);
      EXPECT_TRUE(
          verify_result(graphs[gi], reference, ProblemKind::kCycleMean).ok)
          << name << " graph#" << gi;
      for (const std::int32_t tile_arcs : {0, 64, 4096}) {
        for (const int threads : {1, 2, 8}) {
          const CycleResult r = minimum_cycle_mean(
              graphs[gi], *solver,
              SolveOptions{.num_threads = threads, .tile_arcs = tile_arcs});
          expect_identical(reference, r,
                           name + " graph#" + std::to_string(gi) +
                               " tile_arcs=" + std::to_string(tile_arcs) +
                               " threads=" + std::to_string(threads));
        }
      }
    }
  }
}

TEST(TiledKernels, BitIdenticalAcrossTileSizesAndThreadsRatio) {
  const auto graphs = tiling_instances(/*ratio=*/true);
  for (const std::string name : {"howard_ratio", "lawler_ratio"}) {
    const auto solver = SolverRegistry::instance().create(name);
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const CycleResult reference = minimum_cycle_ratio(graphs[gi], *solver);
      for (const std::int32_t tile_arcs : {0, 64, 4096}) {
        for (const int threads : {1, 2, 8}) {
          const CycleResult r = minimum_cycle_ratio(
              graphs[gi], *solver,
              SolveOptions{.num_threads = threads, .tile_arcs = tile_arcs});
          expect_identical(reference, r,
                           name + " graph#" + std::to_string(gi) +
                               " tile_arcs=" + std::to_string(tile_arcs) +
                               " threads=" + std::to_string(threads));
        }
      }
    }
  }
}

TEST(TiledKernels, BellmanFordVerdictAndPotentialsMatchSerial) {
  gen::SprandConfig sc;
  sc.n = 80;
  sc.m = 300;
  sc.min_weight = -50;
  sc.max_weight = 100;
  sc.seed = 41;
  const Graph g = gen::sprand(sc);
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.num_arcs()));
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    cost[static_cast<std::size_t>(a)] = g.weight(a);
  }
  const BellmanFordResult serial = bellman_ford_all(g, cost);
  ThreadPool pool(4);
  TileStats stats;
  for (const std::int32_t tile_arcs : {1, 16, 64, 100000}) {
    const TileExec tiles{&pool, tile_arcs, &stats};
    const BellmanFordResult tiled = bellman_ford_all(g, cost, nullptr, tiles);
    EXPECT_EQ(serial.has_negative_cycle, tiled.has_negative_cycle) << tile_arcs;
    EXPECT_EQ(serial.cycle, tiled.cycle) << tile_arcs;
    EXPECT_EQ(serial.dist, tiled.dist) << tile_arcs;
  }
  EXPECT_GT(stats.waves.load(), 0u);
}

// --- Pool metrics: once per pool lifetime (satellite 1) ---------------

std::uint64_t sum_worker_counter(obs::MetricsRegistry& m, const char* base) {
  std::uint64_t total = 0;
  for (int w = 0; w < 64; ++w) {
    total += m.counter(obs::labeled_name(base, {{"worker", std::to_string(w)}}))
                 .value();
  }
  return total;
}

TEST(PoolMetrics, SolveManyCountsEachInstanceTaskExactlyOnce) {
  std::vector<Graph> graphs;
  for (int s = 0; s < 6; ++s) {
    graphs.push_back(
        gen::scc_chain(9, 5, 1, 77, 40 + static_cast<std::uint64_t>(s)));
  }
  const auto solver = SolverRegistry::instance().create("howard");
  obs::MetricsRegistry metrics;
  const SolveOptions options{.num_threads = 4, .metrics = &metrics};
  (void)solve_many(graphs, *solver, options);
  // One pool task per instance, accumulated once despite the pool
  // serving several waves of cumulative worker stats.
  EXPECT_EQ(sum_worker_counter(metrics, "mcr_pool_tasks_total"), graphs.size());
  (void)solve_many(graphs, *solver, options);
  EXPECT_EQ(sum_worker_counter(metrics, "mcr_pool_tasks_total"),
            2 * graphs.size());
}

TEST(PoolMetrics, ComponentModeCountsOneTaskPerCyclicComponent) {
  const Graph g = gen::scc_chain(12, 5, 1, 99, 17);
  const auto solver = SolverRegistry::instance().create("howard");
  obs::MetricsRegistry metrics;
  (void)minimum_cycle_mean(g, *solver,
                           SolveOptions{.num_threads = 4, .metrics = &metrics});
  const std::uint64_t cyclic =
      metrics.counter("mcr_components_cyclic_total").value();
  ASSERT_GT(cyclic, 1u);
  EXPECT_EQ(sum_worker_counter(metrics, "mcr_pool_tasks_total"), cyclic);
}

// --- Tile mode engages the pool for one giant SCC (satellite 2) -------

TEST(TiledKernels, SingleComponentWithManyTilesEngagesThePool) {
  const Graph g = gen::torus(10, 10, 1, 1000, 19);  // one SCC, 200 arcs
  const auto solver = SolverRegistry::instance().create("howard");
  obs::MetricsRegistry metrics;
  (void)minimum_cycle_mean(
      g, *solver,
      SolveOptions{.num_threads = 8, .tile_arcs = 16, .metrics = &metrics});
  EXPECT_EQ(metrics.counter("mcr_components_cyclic_total").value(), 1u);
  // Without tile mode a 1-component graph would never submit a task.
  EXPECT_GT(sum_worker_counter(metrics, "mcr_pool_tasks_total"), 0u);
  EXPECT_GT(metrics.counter("mcr_ops_tiles_total").value(), 0u);
}

// --- mcr_ops_tiles_* are thread-independent ---------------------------

std::map<std::string, std::uint64_t> tile_counters(int threads,
                                                   std::int32_t tile_arcs) {
  const Graph g = gen::torus(8, 8, 1, 500, 23);
  const auto solver = SolverRegistry::instance().create("karp");
  obs::MetricsRegistry metrics;
  (void)minimum_cycle_mean(g, *solver,
                           SolveOptions{.num_threads = threads,
                                        .tile_arcs = tile_arcs,
                                        .metrics = &metrics});
  std::map<std::string, std::uint64_t> out;
  for (const char* name : {"mcr_ops_tiles_partitions_total",
                           "mcr_ops_tiles_total", "mcr_ops_tiles_waves_total"}) {
    out[name] = metrics.counter(name).value();
  }
  return out;
}

TEST(TiledKernels, TileCountersIndependentOfThreadCount) {
  const auto reference = tile_counters(1, 32);
  EXPECT_GT(reference.at("mcr_ops_tiles_total"), 0u);
  EXPECT_GT(reference.at("mcr_ops_tiles_waves_total"), 0u);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(tile_counters(threads, 32), reference) << threads;
  }
  // Untiled solves export no tile work at all.
  const auto untiled = tile_counters(8, 0);
  EXPECT_EQ(untiled.at("mcr_ops_tiles_total"), 0u);
}

}  // namespace
}  // namespace mcr
