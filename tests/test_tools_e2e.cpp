// End-to-end tests of the command-line tools: generate an instance with
// mcr_gen, solve and verify it with mcr_solve, and smoke the fuzzer.
// Tool paths are injected by CMake (MCR_TOOL_DIR).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string tool(const std::string& name) {
  return std::string(MCR_TOOL_DIR) + "/" + name;
}

struct RunOutput {
  int exit_code;
  std::string stdout_text;
};

RunOutput run(const std::string& cmd) {
  // Unique per process: ctest runs the E2E cases concurrently, and a
  // shared capture file races.
  const std::string out_path =
      (std::filesystem::temp_directory_path() /
       ("mcr_e2e_out." + std::to_string(::getpid()) + ".txt"))
          .string();
  const int rc = std::system((cmd + " > " + out_path + " 2>&1").c_str());
  std::ifstream in(out_path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(out_path.c_str());
  return RunOutput{rc, ss.str()};
}

TEST(ToolsE2E, GenSolveRoundTrip) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_graph.dimacs").string();
  const auto gen = run(tool("mcr_gen") + " sprand --n 80 --m 240 --seed 5 --out " + file);
  ASSERT_EQ(gen.exit_code, 0) << gen.stdout_text;

  const auto solve = run(tool("mcr_solve") + " " + file + " --verify --critical");
  EXPECT_EQ(solve.exit_code, 0) << solve.stdout_text;
  EXPECT_NE(solve.stdout_text.find("minimum cycle mean"), std::string::npos);
  EXPECT_NE(solve.stdout_text.find("verify: OK"), std::string::npos);
  std::remove(file.c_str());
}

TEST(ToolsE2E, SolveAllAgree) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_graph2.dimacs").string();
  ASSERT_EQ(run(tool("mcr_gen") + " circuit --n 64 --seed 3 --out " + file).exit_code, 0);
  const auto solve = run(tool("mcr_solve") + " " + file + " --all --verify");
  EXPECT_EQ(solve.exit_code, 0) << solve.stdout_text;
  // Every listed solver must print the same value; count distinct "= x ("
  // fragments indirectly by requiring no verify failure.
  EXPECT_EQ(solve.stdout_text.find("verify: a cycle"), std::string::npos);
  std::remove(file.c_str());
}

TEST(ToolsE2E, SolverListIncludesHoward) {
  const auto out = run(tool("mcr_solve") + " --list=");
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.stdout_text.find("howard"), std::string::npos);
  EXPECT_NE(out.stdout_text.find("karp"), std::string::npos);
}

TEST(ToolsE2E, BadUsageFails) {
  EXPECT_NE(run(tool("mcr_solve")).exit_code, 0);
  EXPECT_NE(run(tool("mcr_gen") + " bogus_family").exit_code, 0);
  EXPECT_NE(run(tool("mcr_solve") + " /nonexistent.dimacs").exit_code, 0);
}

TEST(ToolsE2E, FuzzSmoke) {
  const auto out = run(tool("mcr_fuzz") + " --trials 5 --max-n 24 --seed 3");
  EXPECT_EQ(out.exit_code, 0) << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("all 5 trials agree"), std::string::npos);
}

TEST(ToolsE2E, JsonOutput) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_json.dimacs").string();
  ASSERT_EQ(run(tool("mcr_gen") + " ring --n 4 --seed 1 --out " + file).exit_code, 0);
  const auto out = run(tool("mcr_solve") + " " + file + " --json=");
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.stdout_text.find("\"algorithm\":\"howard\""), std::string::npos);
  EXPECT_NE(out.stdout_text.find("\"has_cycle\":true"), std::string::npos);
  EXPECT_NE(out.stdout_text.find("\"cycle_length\":4"), std::string::npos);
  std::remove(file.c_str());
}

TEST(ToolsE2E, SolveMetricsIncludeBuildInfoGauge) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_metrics.dimacs").string();
  ASSERT_EQ(run(tool("mcr_gen") + " ring --n 6 --seed 2 --out " + file).exit_code, 0);
  const auto out = run(tool("mcr_solve") + " " + file + " --metrics=");
  EXPECT_EQ(out.exit_code, 0) << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("mcr_build_info{"), std::string::npos)
      << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("git_sha=\""), std::string::npos);
  EXPECT_NE(out.stdout_text.find("compiler=\""), std::string::npos);
  std::remove(file.c_str());
}

TEST(ToolsE2E, BenchArtifactAndSelfDiff) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mcr_e2e_bench." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string artifact = (dir / "BENCH_e2e.json").string();
  const auto bench =
      run(tool("mcr_bench") + " --name e2e --workload sprand --solvers howard,ko"
          " --max-n 128 --trials 3 --out " + artifact);
  ASSERT_EQ(bench.exit_code, 0) << bench.stdout_text;
  EXPECT_NE(bench.stdout_text.find("schema v1"), std::string::npos);

  // The artifact parses as JSON and carries the schema marker + stats.
  std::ifstream in(artifact);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"schema\":\"mcr-bench\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"median\":"), std::string::npos);
  EXPECT_NE(json.find("\"ci_upper\":"), std::string::npos);
  EXPECT_NE(json.find("\"phases\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":"), std::string::npos);

  // Self-diff: zero regressions, exit 0 — the CI gate's base case.
  const auto diff = run(tool("mcr_bench_diff") + " " + artifact + " " + artifact);
  EXPECT_EQ(diff.exit_code, 0) << diff.stdout_text;
  EXPECT_NE(diff.stdout_text.find("0 regression(s)"), std::string::npos)
      << diff.stdout_text;
  std::filesystem::remove_all(dir);
}

TEST(ToolsE2E, BenchDiffRejectsGarbageInput) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mcr_e2e_badjson." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string bogus = (dir / "bogus.json").string();
  std::ofstream(bogus) << "{\"schema\":\"not-mcr\"}\n";
  const int status = run(tool("mcr_bench_diff") + " " + bogus + " " + bogus).exit_code;
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);  // artifact errors exit 2, not 1
  EXPECT_NE(run(tool("mcr_bench_diff") + " /nonexistent.json /nonexistent.json")
                .exit_code,
            0);
  std::filesystem::remove_all(dir);
}

TEST(ToolsE2E, RatioMode) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_ratio.dimacs").string();
  ASSERT_EQ(run(tool("mcr_gen") + " sprand --n 30 --m 90 --tmin 1 --tmax 5 --out " + file)
                .exit_code,
            0);
  const auto solve = run(tool("mcr_solve") + " " + file + " --ratio --verify");
  EXPECT_EQ(solve.exit_code, 0) << solve.stdout_text;
  EXPECT_NE(solve.stdout_text.find("minimum cycle ratio"), std::string::npos);
  std::remove(file.c_str());
}

}  // namespace
