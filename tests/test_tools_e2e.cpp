// End-to-end tests of the command-line tools: generate an instance with
// mcr_gen, solve and verify it with mcr_solve, and smoke the fuzzer.
// Tool paths are injected by CMake (MCR_TOOL_DIR).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.h"

namespace {

std::string tool(const std::string& name) {
  return std::string(MCR_TOOL_DIR) + "/" + name;
}

struct RunOutput {
  int exit_code;
  std::string stdout_text;
};

RunOutput run(const std::string& cmd) {
  // Unique per process: ctest runs the E2E cases concurrently, and a
  // shared capture file races.
  const std::string out_path =
      (std::filesystem::temp_directory_path() /
       ("mcr_e2e_out." + std::to_string(::getpid()) + ".txt"))
          .string();
  const int rc = std::system((cmd + " > " + out_path + " 2>&1").c_str());
  std::ifstream in(out_path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(out_path.c_str());
  return RunOutput{rc, ss.str()};
}

TEST(ToolsE2E, GenSolveRoundTrip) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_graph.dimacs").string();
  const auto gen = run(tool("mcr_gen") + " sprand --n 80 --m 240 --seed 5 --out " + file);
  ASSERT_EQ(gen.exit_code, 0) << gen.stdout_text;

  const auto solve = run(tool("mcr_solve") + " " + file + " --verify --critical");
  EXPECT_EQ(solve.exit_code, 0) << solve.stdout_text;
  EXPECT_NE(solve.stdout_text.find("minimum cycle mean"), std::string::npos);
  EXPECT_NE(solve.stdout_text.find("verify: OK"), std::string::npos);
  std::remove(file.c_str());
}

TEST(ToolsE2E, SolveAllAgree) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_graph2.dimacs").string();
  ASSERT_EQ(run(tool("mcr_gen") + " circuit --n 64 --seed 3 --out " + file).exit_code, 0);
  const auto solve = run(tool("mcr_solve") + " " + file + " --all --verify");
  EXPECT_EQ(solve.exit_code, 0) << solve.stdout_text;
  // Every listed solver must print the same value; count distinct "= x ("
  // fragments indirectly by requiring no verify failure.
  EXPECT_EQ(solve.stdout_text.find("verify: a cycle"), std::string::npos);
  std::remove(file.c_str());
}

TEST(ToolsE2E, SolverListIncludesHoward) {
  const auto out = run(tool("mcr_solve") + " --list=");
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.stdout_text.find("howard"), std::string::npos);
  EXPECT_NE(out.stdout_text.find("karp"), std::string::npos);
}

TEST(ToolsE2E, BadUsageFails) {
  EXPECT_NE(run(tool("mcr_solve")).exit_code, 0);
  EXPECT_NE(run(tool("mcr_gen") + " bogus_family").exit_code, 0);
  EXPECT_NE(run(tool("mcr_solve") + " /nonexistent.dimacs").exit_code, 0);
}

TEST(ToolsE2E, FuzzSmoke) {
  const auto out = run(tool("mcr_fuzz") + " --trials 5 --max-n 24 --seed 3");
  EXPECT_EQ(out.exit_code, 0) << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("all 5 trials agree"), std::string::npos);
}

TEST(ToolsE2E, JsonOutput) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_json.dimacs").string();
  ASSERT_EQ(run(tool("mcr_gen") + " ring --n 4 --seed 1 --out " + file).exit_code, 0);
  const auto out = run(tool("mcr_solve") + " " + file + " --json=");
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_NE(out.stdout_text.find("\"algorithm\":\"howard\""), std::string::npos);
  EXPECT_NE(out.stdout_text.find("\"has_cycle\":true"), std::string::npos);
  EXPECT_NE(out.stdout_text.find("\"cycle_length\":4"), std::string::npos);
  std::remove(file.c_str());
}

TEST(ToolsE2E, SolveMetricsIncludeBuildInfoGauge) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_metrics.dimacs").string();
  ASSERT_EQ(run(tool("mcr_gen") + " ring --n 6 --seed 2 --out " + file).exit_code, 0);
  const auto out = run(tool("mcr_solve") + " " + file + " --metrics=");
  EXPECT_EQ(out.exit_code, 0) << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("mcr_build_info{"), std::string::npos)
      << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("git_sha=\""), std::string::npos);
  EXPECT_NE(out.stdout_text.find("compiler=\""), std::string::npos);
  std::remove(file.c_str());
}

TEST(ToolsE2E, BenchArtifactAndSelfDiff) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mcr_e2e_bench." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string artifact = (dir / "BENCH_e2e.json").string();
  const auto bench =
      run(tool("mcr_bench") + " --name e2e --workload sprand --solvers howard,ko"
          " --max-n 128 --trials 3 --out " + artifact);
  ASSERT_EQ(bench.exit_code, 0) << bench.stdout_text;
  EXPECT_NE(bench.stdout_text.find("schema v1"), std::string::npos);

  // The artifact parses as JSON and carries the schema marker + stats.
  std::ifstream in(artifact);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"schema\":\"mcr-bench\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"median\":"), std::string::npos);
  EXPECT_NE(json.find("\"ci_upper\":"), std::string::npos);
  EXPECT_NE(json.find("\"phases\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":"), std::string::npos);

  // Self-diff: zero regressions, exit 0 — the CI gate's base case.
  const auto diff = run(tool("mcr_bench_diff") + " " + artifact + " " + artifact);
  EXPECT_EQ(diff.exit_code, 0) << diff.stdout_text;
  EXPECT_NE(diff.stdout_text.find("0 regression(s)"), std::string::npos)
      << diff.stdout_text;
  std::filesystem::remove_all(dir);
}

TEST(ToolsE2E, BenchDiffRejectsGarbageInput) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mcr_e2e_badjson." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string bogus = (dir / "bogus.json").string();
  std::ofstream(bogus) << "{\"schema\":\"not-mcr\"}\n";
  const int status = run(tool("mcr_bench_diff") + " " + bogus + " " + bogus).exit_code;
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);  // artifact errors exit 2, not 1
  EXPECT_NE(run(tool("mcr_bench_diff") + " /nonexistent.json /nonexistent.json")
                .exit_code,
            0);
  std::filesystem::remove_all(dir);
}

TEST(ToolsE2E, RatioMode) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_ratio.dimacs").string();
  ASSERT_EQ(run(tool("mcr_gen") + " sprand --n 30 --m 90 --tmin 1 --tmax 5 --out " + file)
                .exit_code,
            0);
  const auto solve = run(tool("mcr_solve") + " " + file + " --ratio --verify");
  EXPECT_EQ(solve.exit_code, 0) << solve.stdout_text;
  EXPECT_NE(solve.stdout_text.find("minimum cycle ratio"), std::string::npos);
  std::remove(file.c_str());
}

TEST(ToolsE2E, VersionFlagOnEveryTool) {
  for (const char* name : {"mcr_solve", "mcr_gen", "mcr_fuzz", "mcr_bench",
                           "mcr_bench_diff", "mcr_serve", "mcr_query"}) {
    const auto out = run(tool(name) + " --version=");
    EXPECT_EQ(out.exit_code, 0) << name << ": " << out.stdout_text;
    EXPECT_NE(out.stdout_text.find(name), std::string::npos) << out.stdout_text;
    EXPECT_NE(out.stdout_text.find("git sha:"), std::string::npos) << name;
    EXPECT_NE(out.stdout_text.find("compiler:"), std::string::npos) << name;
  }
}

TEST(ToolsE2E, OutputJsonIsValidJson) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_ojson.dimacs").string();
  ASSERT_EQ(run(tool("mcr_gen") + " circuit --n 48 --seed 7 --out " + file).exit_code, 0);
  // The JSON line (stdout also carries the instance banner) must
  // satisfy a real JSON parser.
  const auto out = run(tool("mcr_solve") + " " + file +
                       " --output json | grep '^{' | python3 -m json.tool");
  EXPECT_EQ(out.exit_code, 0) << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("\"value_num\""), std::string::npos);
  EXPECT_NE(out.stdout_text.find("\"cycle_arcs\""), std::string::npos);
  std::remove(file.c_str());
}

TEST(ToolsE2E, UnknownAlgoListsRegisteredSolvers) {
  const std::string file =
      (std::filesystem::temp_directory_path() / "mcr_e2e_badalgo.dimacs").string();
  ASSERT_EQ(run(tool("mcr_gen") + " ring --n 4 --seed 1 --out " + file).exit_code, 0);
  const auto out = run(tool("mcr_solve") + " " + file + " --algo not_an_algo");
  EXPECT_NE(out.exit_code, 0);
  EXPECT_NE(out.stdout_text.find("unknown solver 'not_an_algo'"), std::string::npos)
      << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("registered solvers:"), std::string::npos);
  EXPECT_NE(out.stdout_text.find("howard"), std::string::npos);
  std::remove(file.c_str());
}

// ---------------------------------------------------------------------------
// Solve service e2e: a real mcr_serve process driven through mcr_query.

pid_t spawn_tool(const std::vector<std::string>& argv, const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: redirect output and exec.
  if (std::freopen(log_path.c_str(), "w", stdout) == nullptr) _exit(127);
  (void)::dup2(1, 2);
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  ::execv(cargv[0], cargv.data());
  _exit(127);
}

bool wait_for_ping(const std::string& socket_path) {
  for (int i = 0; i < 100; ++i) {
    if (run(tool("mcr_query") + " --socket " + socket_path + " ping").exit_code == 0) {
      return true;
    }
    ::usleep(100 * 1000);
  }
  return false;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The ISSUE acceptance e2e: mcr_serve on a Unix socket, the same solve
// from 8 concurrent mcr_query clients → all result objects
// byte-identical, they match mcr_solve's schema on the same instance
// (up to wall time, the schema's trailing field), the service metrics
// prove exactly one underlying solve ran, and SIGTERM drains an
// in-flight request before the process exits 0.
TEST(ToolsE2E, ServeQueryConcurrentClientsAndDrain) {
  namespace fs = std::filesystem;
  const auto dir =
      fs::temp_directory_path() / ("mcr_e2e_svc." + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string graph = (dir / "g.dimacs").string();
  const std::string sock = (dir / "mcr.sock").string();
  const std::string log = (dir / "serve.log").string();
  ASSERT_EQ(
      run(tool("mcr_gen") + " circuit --n 400 --seed 11 --out " + graph).exit_code, 0);

  const pid_t server = spawn_tool({tool("mcr_serve"), "--socket", sock}, log);
  ASSERT_GT(server, 0);
  ASSERT_TRUE(wait_for_ping(sock)) << slurp(log);

  // 8 concurrent clients, same solve, JSON result to one file each.
  const std::string query = tool("mcr_query") + " --socket " + sock + " solve " +
                            graph + " --output json";
  std::string fanout = "for i in 0 1 2 3 4 5 6 7; do " + query + " > " +
                       (dir / "out.$i.json").string() + " 2>/dev/null & done; wait";
  ASSERT_EQ(run("bash -c '" + fanout + "'").exit_code, 0);

  const std::string first = slurp((dir / "out.0.json").string());
  ASSERT_NE(first.find("\"has_cycle\":true"), std::string::npos) << first;
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(slurp((dir / ("out." + std::to_string(i) + ".json")).string()), first)
        << "client " << i << " diverged";
  }

  // Exactly one underlying solve ran for the 8 requests.
  const auto stats =
      run(tool("mcr_query") + " --socket " + sock + " stats --prometheus=");
  ASSERT_EQ(stats.exit_code, 0) << stats.stdout_text;
  EXPECT_NE(stats.stdout_text.find("mcr_solves_total 1"), std::string::npos)
      << stats.stdout_text;

  // The result matches mcr_solve on the same instance: the schema is
  // shared and everything up to the trailing wall-time field is
  // byte-identical.
  const auto local = run(tool("mcr_solve") + " " + graph + " --output json | grep '^{'");
  ASSERT_EQ(local.exit_code, 0);
  const std::string cut = ",\"milliseconds\":";
  const std::string service_prefix = first.substr(0, first.find(cut));
  const std::string local_prefix =
      local.stdout_text.substr(0, local.stdout_text.find(cut));
  EXPECT_EQ(service_prefix, local_prefix);

  // SIGTERM with a request in flight: the request completes, the
  // server drains and exits 0.
  std::string bg = query + " > " + (dir / "inflight.json").string() +
                   " 2>/dev/null & sleep 0.05; kill -TERM " +
                   std::to_string(server) + "; wait $!";
  ASSERT_EQ(run("bash -c '" + bg + "'").exit_code, 0);
  int status = -1;
  ASSERT_EQ(::waitpid(server, &status, 0), server);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(slurp((dir / "inflight.json").string()), first);
  const std::string serve_log = slurp(log);
  EXPECT_NE(serve_log.find("draining"), std::string::npos) << serve_log;
  EXPECT_NE(serve_log.find("drained, exiting"), std::string::npos) << serve_log;
  fs::remove_all(dir);
}

// Workload observatory e2e: mcr_serve with the windowed-telemetry pump
// enabled, an open-loop mcr_load run against it, then a cross-check
// that the client-side exact percentiles agree with the server's
// windowed (bucket-interpolated) percentiles.
TEST(ToolsE2E, LoadHarnessAgreesWithServerWindowedPercentiles) {
  namespace fs = std::filesystem;
  const auto dir =
      fs::temp_directory_path() / ("mcr_e2e_load." + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string sock = (dir / "mcr.sock").string();
  const std::string log = (dir / "serve.log").string();
  const std::string stats_path = (dir / "stats.jsonl").string();
  const std::string report_path = (dir / "load.json").string();

  // Window far larger than the run, so every observation is still
  // in-window when the final pump line is written at drain.
  const pid_t server = spawn_tool(
      {tool("mcr_serve"), "--socket", sock, "--window", "300",
       "--stats-interval", "0.4", "--stats-out", stats_path},
      log);
  ASSERT_GT(server, 0);
  ASSERT_TRUE(wait_for_ping(sock)) << slurp(log);

  // Open loop, all-cold SOLVEs on an instance big enough that real
  // solve work dominates transport overhead — otherwise the client
  // (round trip from intended send time) and the server (receipt to
  // response) measure different things and no tolerance is honest.
  // The offered rate is far below capacity so open-loop backlog stays
  // out of the picture even under sanitizer slowdown.
  const auto load = run(tool("mcr_load") + " --socket " + sock +
                        " --rps 60 --duration 3 --connections 4"
                        " --mix solve=100 --cold-pct 100 --graph-n 2048"
                        " --seed 7 --output " + report_path);
  ASSERT_EQ(load.exit_code, 0) << load.stdout_text;
  EXPECT_NE(load.stdout_text.find("0 transport errors"), std::string::npos)
      << load.stdout_text;

  // Drain the server so the pump writes its final line, then read both
  // sides' artifacts.
  ASSERT_EQ(::kill(server, SIGTERM), 0);
  int status = -1;
  ASSERT_EQ(::waitpid(server, &status, 0), server);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  const mcr::json::Value report = mcr::json::parse(slurp(report_path));
  EXPECT_EQ(report.number_or("schema_version", 0.0), 1.0);
  EXPECT_EQ(report.string_or("mode", ""), "open");
  const double completed = report.number_or("completed", 0.0);
  EXPECT_GE(completed, 50.0);
  EXPECT_EQ(report.number_or("transport_errors", -1.0), 0.0);
  EXPECT_GE(report.at("cache").number_or("misses", 0.0), completed);
  const mcr::json::Value& lat = report.at("latency_ms");
  ASSERT_TRUE(lat.at("p50").is_number());
  ASSERT_TRUE(lat.at("p95").is_number());

  std::ifstream in(stats_path);
  ASSERT_TRUE(in.is_open());
  std::string line, last;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    last = line;
    ++lines;
  }
  EXPECT_GE(lines, 2u);  // ~3 s run at 0.4 s interval plus the drain line
  const mcr::json::Value snap = mcr::json::parse(last);
  const mcr::json::Value& verbs = snap.at("window").at("verbs");
  ASSERT_TRUE(verbs.has("SOLVE")) << last;
  EXPECT_GE(verbs.at("SOLVE").number_or("count", 0.0), completed);

  // Cross-check: exact client percentiles vs bucket-interpolated server
  // percentiles. The service histogram is log-spaced 3 buckets/decade,
  // so interpolation may be off by up to one bucket factor
  // 10^(1/3) ≈ 2.154; allow a little slack on top for transport.
  for (const char* q : {"p50", "p95"}) {
    const double client_ms = lat.at(q).as_double();
    const double server_ms =
        verbs.at("SOLVE").number_or(std::string(q) + "_ms", -1.0);
    ASSERT_GT(server_ms, 0.0) << q << " in " << last;
    EXPECT_LT(client_ms / server_ms, 2.6) << q;
    EXPECT_GT(client_ms / server_ms, 1.0 / 2.6) << q;
  }
  fs::remove_all(dir);
}

}  // namespace
