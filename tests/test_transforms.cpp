#include "graph/transforms.h"

#include <gtest/gtest.h>

#include "core/driver.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

TEST(Transforms, NegateWeights) {
  const Graph g = gen::ring({1, -2, 3});
  const Graph neg = negate_weights(g);
  EXPECT_EQ(neg.weight(0), -1);
  EXPECT_EQ(neg.weight(1), 2);
  EXPECT_EQ(neg.weight(2), -3);
  EXPECT_EQ(neg.num_nodes(), g.num_nodes());
}

TEST(Transforms, WithUnitTransit) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 5, 7);
  b.add_arc(1, 0, 5, 9);
  const Graph u = with_unit_transit(b.build());
  EXPECT_EQ(u.transit(0), 1);
  EXPECT_EQ(u.transit(1), 1);
  EXPECT_EQ(u.weight(0), 5);
}

TEST(Transforms, ScaleWeights) {
  const Graph g = scale_weights(gen::ring({1, 2, 3}), -4);
  EXPECT_EQ(g.weight(0), -4);
  EXPECT_EQ(g.weight(2), -12);
}

TEST(Transforms, ReverseSwapsEndpoints) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 5);
  b.add_arc(1, 2, 6);
  const Graph r = reverse(b.build());
  EXPECT_EQ(r.src(0), 1);
  EXPECT_EQ(r.dst(0), 0);
  EXPECT_EQ(r.weight(0), 5);
  EXPECT_EQ(r.src(1), 2);
}

TEST(Transforms, ReverseTwiceIsIdentity) {
  const Graph g = gen::sprand({.n = 20, .m = 60, .seed = 4});
  const Graph rr = reverse(reverse(g));
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_EQ(rr.src(a), g.src(a));
    EXPECT_EQ(rr.dst(a), g.dst(a));
    EXPECT_EQ(rr.weight(a), g.weight(a));
  }
}

TEST(SimplifyParallel, MeanKeepsMinWeight) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 10);
  b.add_arc(0, 1, 3);  // winner
  b.add_arc(0, 1, 7);
  b.add_arc(1, 0, 5);
  const auto s = simplify_parallel_arcs(b.build(), false);
  EXPECT_EQ(s.graph.num_arcs(), 2);
  // The kept 0->1 arc has weight 3 and maps back to arc id 1.
  bool found = false;
  for (ArcId a = 0; a < s.graph.num_arcs(); ++a) {
    if (s.graph.src(a) == 0) {
      EXPECT_EQ(s.graph.weight(a), 3);
      EXPECT_EQ(s.to_parent_arc[static_cast<std::size_t>(a)], 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SimplifyParallel, PreservesMinimumCycleMean) {
  gen::SprandConfig cfg;
  cfg.n = 40;
  cfg.m = 400;  // dense => many parallels
  cfg.seed = 8;
  const Graph g = gen::sprand(cfg);
  const auto s = simplify_parallel_arcs(g, false);
  EXPECT_LT(s.graph.num_arcs(), g.num_arcs());
  EXPECT_EQ(minimum_cycle_mean(g, "howard").value,
            minimum_cycle_mean(s.graph, "howard").value);
}

TEST(SimplifyParallel, RatioKeepsParetoFrontier) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 10, 1);  // dominated by (3, 2)
  b.add_arc(0, 1, 3, 2);   // frontier
  b.add_arc(0, 1, 1, 1);   // frontier (lower weight)
  b.add_arc(0, 1, 5, 5);   // frontier (higher transit)
  b.add_arc(1, 0, 2, 2);
  const auto s = simplify_parallel_arcs(b.build(), true);
  // Frontier of 0->1: (1,1), (3,2), (5,5); plus the 1->0 arc.
  EXPECT_EQ(s.graph.num_arcs(), 4);
}

TEST(SimplifyParallel, RatioDropsEqualWeightLowerTransit) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 3, 1);  // dominated: same weight, less transit
  b.add_arc(0, 1, 3, 4);
  b.add_arc(1, 0, 1, 1);
  const auto s = simplify_parallel_arcs(b.build(), true);
  EXPECT_EQ(s.graph.num_arcs(), 2);
}

TEST(SimplifyParallel, PreservesMinimumCycleRatio) {
  gen::SprandConfig cfg;
  cfg.n = 25;
  cfg.m = 250;
  cfg.min_transit = 1;
  cfg.max_transit = 5;
  cfg.seed = 12;
  const Graph g = gen::sprand(cfg);
  const auto s = simplify_parallel_arcs(g, true);
  EXPECT_LE(s.graph.num_arcs(), g.num_arcs());
  EXPECT_EQ(minimum_cycle_ratio(g, "howard_ratio").value,
            minimum_cycle_ratio(s.graph, "howard_ratio").value);
}

TEST(SimplifyParallel, KeepsSelfLoops) {
  GraphBuilder b(1);
  b.add_arc(0, 0, 5);
  b.add_arc(0, 0, 2);
  const auto s = simplify_parallel_arcs(b.build(), false);
  EXPECT_EQ(s.graph.num_arcs(), 1);
  EXPECT_EQ(s.graph.weight(0), 2);
}

TEST(SimplifyParallel, NoParallelsIsIdentity) {
  const Graph g = gen::ring({1, 2, 3});
  const auto s = simplify_parallel_arcs(g, false);
  EXPECT_EQ(s.graph.num_arcs(), 3);
  for (ArcId a = 0; a < 3; ++a) {
    EXPECT_EQ(s.to_parent_arc[static_cast<std::size_t>(a)], a);
  }
}

}  // namespace
}  // namespace mcr
