#include "graph/traversal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/result.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

Graph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (acyclic).
  GraphBuilder b(4);
  b.add_arc(0, 1, 1);
  b.add_arc(0, 2, 1);
  b.add_arc(1, 3, 1);
  b.add_arc(2, 3, 1);
  return b.build();
}

TEST(Bfs, OrderStartsAtSourceAndCoversReachable) {
  const auto order = bfs_order(diamond(), 0);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[3], 3);  // farthest node last
}

TEST(Bfs, UnreachableNodesExcluded) {
  const auto order = bfs_order(gen::path(4), 2);
  EXPECT_EQ(order.size(), 2u);  // 2, 3
}

TEST(Bfs, OutOfRangeSourceThrows) {
  EXPECT_THROW(bfs_order(diamond(), 9), std::out_of_range);
  EXPECT_THROW(bfs_order(diamond(), -1), std::out_of_range);
}

TEST(ReverseBfs, FollowsInArcs) {
  const auto order = reverse_bfs_order(diamond(), 3);
  EXPECT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 3);
  EXPECT_EQ(order[3], 0);
}

TEST(ReachableFrom, Flags) {
  const auto r = reachable_from(gen::path(4), 1);
  EXPECT_FALSE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_TRUE(r[2]);
  EXPECT_TRUE(r[3]);
}

TEST(Topological, ValidOrderOnDag) {
  const Graph g = diamond();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = i;
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_LT(pos[static_cast<std::size_t>(g.src(a))],
              pos[static_cast<std::size_t>(g.dst(a))]);
  }
}

TEST(Topological, EmptyOnCyclicGraph) {
  EXPECT_TRUE(topological_order(gen::ring({1, 2, 3})).empty());
}

TEST(HasCycle, Detection) {
  EXPECT_FALSE(has_cycle(diamond()));
  EXPECT_FALSE(has_cycle(gen::path(3)));
  EXPECT_TRUE(has_cycle(gen::ring({1, 2})));
  EXPECT_FALSE(has_cycle(Graph(0, {})));
}

TEST(HasCycle, SelfLoop) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 1, 1);
  EXPECT_TRUE(has_cycle(b.build()));
}

TEST(FindAnyCycle, EmptySubsetHasNone) {
  const Graph g = gen::ring({1, 2, 3});
  EXPECT_TRUE(find_any_cycle(g, {}).empty());
}

TEST(FindAnyCycle, AcyclicSubsetOfCyclicGraph) {
  const Graph g = gen::ring({1, 2, 3});
  const std::vector<ArcId> subset{0, 1};  // misses the closing arc
  EXPECT_TRUE(find_any_cycle(g, subset).empty());
}

TEST(FindAnyCycle, FindsRing) {
  const Graph g = gen::ring({1, 2, 3});
  const std::vector<ArcId> all{0, 1, 2};
  const auto cycle = find_any_cycle(g, all);
  ASSERT_EQ(cycle.size(), 3u);
  EXPECT_TRUE(is_valid_cycle(g, cycle));
}

TEST(FindAnyCycle, FindsSelfLoop) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1);
  const ArcId loop = b.add_arc(1, 1, 1);
  const Graph g = b.build();
  const std::vector<ArcId> all{0, loop};
  const auto cycle = find_any_cycle(g, all);
  ASSERT_EQ(cycle.size(), 1u);
  EXPECT_EQ(cycle[0], loop);
}

TEST(FindAnyCycle, ReturnsValidCycleInDenseGraph) {
  const Graph g = gen::complete(6, 1, 9, 3);
  std::vector<ArcId> all(static_cast<std::size_t>(g.num_arcs()));
  for (ArcId a = 0; a < g.num_arcs(); ++a) all[static_cast<std::size_t>(a)] = a;
  const auto cycle = find_any_cycle(g, all);
  ASSERT_FALSE(cycle.empty());
  EXPECT_TRUE(is_valid_cycle(g, cycle));
  // Simple cycle: no repeated nodes.
  std::set<NodeId> nodes;
  for (const ArcId a : cycle) EXPECT_TRUE(nodes.insert(g.src(a)).second);
}

TEST(FindAnyCycle, BacktracksAcrossDeadEnds) {
  // 0 -> 1 -> 2 (dead end), 0 -> 3 -> 0 is the only cycle.
  GraphBuilder b(4);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 2, 1);
  b.add_arc(0, 3, 1);
  const ArcId back = b.add_arc(3, 0, 1);
  const Graph g = b.build();
  std::vector<ArcId> all{0, 1, 2, back};
  const auto cycle = find_any_cycle(g, all);
  ASSERT_EQ(cycle.size(), 2u);
  EXPECT_TRUE(is_valid_cycle(g, cycle));
}

}  // namespace
}  // namespace mcr
