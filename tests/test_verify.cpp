#include "core/verify.h"

#include <gtest/gtest.h>

#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

CycleResult make_result(Rational value, std::vector<ArcId> cycle) {
  CycleResult r;
  r.has_cycle = true;
  r.value = value;
  r.cycle = std::move(cycle);
  return r;
}

TEST(Verify, AcceptsCorrectResult) {
  const Graph g = gen::ring({1, 2, 3});
  const auto out = verify_result(g, make_result(Rational(2), {0, 1, 2}),
                                 ProblemKind::kCycleMean);
  EXPECT_TRUE(out.ok) << out.message;
}

TEST(Verify, RejectsSuboptimalValue) {
  // Ring mean is 2 but a second better cycle exists.
  GraphBuilder b(3);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 2, 2);
  b.add_arc(2, 0, 3);
  b.add_arc(0, 0, 1);  // self-loop mean 1 beats the ring
  const Graph g = b.build();
  const auto out = verify_result(g, make_result(Rational(2), {0, 1, 2}),
                                 ProblemKind::kCycleMean);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.message.find("better"), std::string::npos);
}

TEST(Verify, RejectsWitnessValueMismatch) {
  const Graph g = gen::ring({1, 2, 3});
  const auto out = verify_result(g, make_result(Rational(1), {0, 1, 2}),
                                 ProblemKind::kCycleMean);
  EXPECT_FALSE(out.ok);
}

TEST(Verify, RejectsInvalidWitness) {
  const Graph g = gen::ring({1, 2, 3});
  const auto out =
      verify_result(g, make_result(Rational(2), {0, 2}), ProblemKind::kCycleMean);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.message.find("not a valid cycle"), std::string::npos);
}

TEST(Verify, NoCycleClaimOnAcyclicGraphIsOk) {
  CycleResult r;  // has_cycle = false
  const auto out = verify_result(gen::path(4), r, ProblemKind::kCycleMean);
  EXPECT_TRUE(out.ok);
}

TEST(Verify, NoCycleClaimOnCyclicGraphFails) {
  CycleResult r;
  const auto out = verify_result(gen::ring({1, 2}), r, ProblemKind::kCycleMean);
  EXPECT_FALSE(out.ok);
}

TEST(Verify, CycleClaimOnAcyclicGraphFails) {
  const auto out = verify_result(gen::path(4), make_result(Rational(1), {0}),
                                 ProblemKind::kCycleMean);
  EXPECT_FALSE(out.ok);
}

TEST(Verify, RatioKind) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 6, 2);
  b.add_arc(1, 0, 6, 4);
  const Graph g = b.build();
  EXPECT_TRUE(
      verify_result(g, make_result(Rational(2), {0, 1}), ProblemKind::kCycleRatio).ok);
  EXPECT_FALSE(
      verify_result(g, make_result(Rational(4), {0, 1}), ProblemKind::kCycleRatio).ok);
}

TEST(VerifyApprox, AcceptsWithinEpsilon) {
  // Two cycles: self-loop mean 10 and 11; claiming 11 is within eps=2.
  GraphBuilder b(2);
  b.add_arc(0, 1, 11);
  b.add_arc(1, 0, 11);  // mean 11
  b.add_arc(0, 0, 10);  // mean 10 (true optimum)
  const Graph g = b.build();
  const auto ok = verify_result_approx(g, make_result(Rational(11), {0, 1}),
                                       ProblemKind::kCycleMean, 2.0);
  EXPECT_TRUE(ok.ok) << ok.message;
  const auto bad = verify_result_approx(g, make_result(Rational(11), {0, 1}),
                                        ProblemKind::kCycleMean, 0.5);
  EXPECT_FALSE(bad.ok);
}

TEST(VerifyApprox, StillChecksWitnessExactly) {
  const Graph g = gen::ring({1, 2, 3});
  const auto out = verify_result_approx(g, make_result(Rational(3), {0, 1, 2}),
                                        ProblemKind::kCycleMean, 10.0);
  EXPECT_FALSE(out.ok);  // witness achieves 2, not 3
}

}  // namespace
}  // namespace mcr
