#!/usr/bin/env bash
# bench_all.sh — one entry point for the repo's benchmark tables.
#
# Replaces the four hand-run bench_out/*.csv flows with one script that
# drives mcr_bench per table, producing schema-versioned BENCH_*.json
# artifacts (per-cell median/MAD/95% CI, phase breakdown, hardware
# counters) suitable for mcr_bench_diff regression gating. See
# docs/BENCHMARKING.md for the schema and the gating workflow.
#
# Usage:
#   tools/bench_all.sh [BUILD_DIR] [OUT_DIR]
#   tools/bench_all.sh --update-baseline [BUILD_DIR] [OUT_FILE]
#
#   BUILD_DIR  where mcr_bench lives (default: build)
#   OUT_DIR    where BENCH_*.json land (default: bench_out)
#
# --update-baseline regenerates the committed regression baseline
# (default OUT_FILE: BENCH_baseline.json at the repo root). This is the
# single source of truth for the baseline recipe — ci.sh reruns the
# exact same recipe for the candidate side of its gate, so regenerate
# the baseline with this mode only (see docs/BENCHMARKING.md).
#
# Environment:
#   MCR_BENCH_SCALE  small | medium | full (default small; full is the
#                    paper's complete grid and takes hours)
#   MCR_BENCH_TRIALS timed repetitions per cell (default 5)
#
# Typical regression workflow:
#   tools/bench_all.sh build baseline_out         # on the base commit
#   tools/bench_all.sh build candidate_out        # on your branch
#   build/tools/mcr_bench_diff baseline_out/BENCH_table2.json \
#                              candidate_out/BENCH_table2.json
set -euo pipefail

UPDATE_BASELINE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
  UPDATE_BASELINE=1
  shift
fi

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_out}"
TRIALS="${MCR_BENCH_TRIALS:-5}"
BENCH="$BUILD_DIR/tools/mcr_bench"

if [[ ! -x "$BENCH" ]]; then
  echo "bench_all.sh: $BENCH not found — build with: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 2
fi

if [[ "$UPDATE_BASELINE" == 1 ]]; then
  # THE baseline recipe: a tiny sprand grid that finishes in seconds on
  # any machine, covering the tiled solver families (Bellman-Ford via
  # lawler, the Karp table fills, Howard) with threading + tiling on so
  # the gate also exercises the parallel paths. ci.sh reruns this exact
  # recipe for its candidate artifact; change it only together with a
  # freshly regenerated committed baseline.
  OUT_FILE="${2:-BENCH_baseline.json}"
  MCR_BENCH_SCALE=small "$BENCH" --name baseline --workload sprand \
      --solvers howard,karp,karp2,lawler --max-n 256 \
      --trials "$TRIALS" --threads 2 --tile-arcs 1024 --out "$OUT_FILE"
  echo "baseline written to $OUT_FILE"
  exit 0
fi
mkdir -p "$OUT_DIR"

run_table() {
  local name="$1" workload="$2" solvers="$3"
  echo "=== $name ($workload: $solvers) ==="
  "$BENCH" --name "$name" --workload "$workload" --solvers "$solvers" \
           --trials "$TRIALS" --out "$OUT_DIR/BENCH_$name.json"
  echo
}

# Table 2: the ten MCM algorithms on the SPRAND grid.
run_table table2 sprand "burns,ko,yto,howard,ho,karp,dg,lawler,karp2,oa1"

# Circuits: the LGSynth-style register graphs (paper §4.5 discussion).
run_table circuits circuit "burns,ko,yto,howard,ho,karp,dg,lawler,karp2,oa1"

# Ratio: cost-to-time ratio solvers on transit-weighted SPRAND (exp. R1).
run_table ratio sprand_ratio "howard_ratio,yto_ratio,burns_ratio,lawler_ratio,cycle_cancel_ratio"

# Extensions: the §5 improved-variant study (exp. X1).
run_table extensions sprand "lawler,lawler_improved,cycle_cancel,howard,howard_naive_init"

echo "artifacts in $OUT_DIR:"
ls -l "$OUT_DIR"/BENCH_*.json
echo "compare two runs with: $BUILD_DIR/tools/mcr_bench_diff OLD.json NEW.json"
