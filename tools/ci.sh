#!/usr/bin/env bash
# CI gate: build Release and ASan+UBSan, run the full test suite in
# both, then run a differential-fuzz smoke (mean + ratio, serial and
# threaded) under the sanitizers so exactness bugs of the Howard-rescale
# class cannot regress silently. A third, TSan config re-runs the
# concurrency-heavy suites (pool, parallel driver, tiled kernels, solve
# service). Each config also runs a traced +
# metered multi-SCC smoke solve and validates the exported trace /
# metrics JSON with python3 -m json.tool, plus a live-daemon
# observability smoke: mcr_serve with the flight recorder pinning
# everything and a JSONL request log, a solve tagged with a known trace
# id, the TRACE payload fetched back by that id and json.tool-validated,
# and every request-log line parsed as JSON, and a live-daemon load
# smoke: mcr_serve with the windowed-telemetry pump on, a closed-loop
# mixed-verb mcr_load run with a nonzero cold fraction, gated on zero
# transport errors plus json.tool-valid report and stats JSONL
# artifacts, and a zero-copy store smoke: two mcr_pack datasets served
# via --dataset and hot-swapped under a --strict mcr_load reload mix
# with zero failures, with the post-swap fingerprint/generation asserted
# via STATS (the ASan leg additionally re-runs the pack
# corruption-rejection suite), and a fault-tolerant fleet smoke: three
# workers behind mcr_router under a --strict mcr_load run with one
# worker SIGKILLed mid-run and restarted — zero client-visible errors,
# nonzero failover counter, breaker re-closed to up=1 (the TSan leg
# additionally runs the router concurrency tests). A tiny mcr_bench
# grid runs
# twice and is gated with mcr_bench_diff: the self-diff must report zero
# regressions (exit 0), and the A-vs-B cross-run diff uses a generous
# threshold since CI machines are noisy (see docs/BENCHMARKING.md).
# The Release config additionally gates against the committed
# BENCH_baseline.json via the bench_all.sh --update-baseline recipe.
# The sanitizer configs compile the fault-injection hooks in and run the
# mcr_chaos seeded sweep (ASan, with --repeat-check; the sweep's
# in-process servers run tiny always-on flight recorders whose capacity
# bounds are asserted per seed) plus a worker-death-heavy plan (TSan),
# and a chaos --crash-test that must die by SIGABRT while leaving a
# json.tool-valid post-mortem flight dump; the Release config asserts
# with nm that no injector symbol leaked into the shipped artifacts
# (docs/ROBUSTNESS.md).
#
#   tools/ci.sh [--fast]
#
# --fast skips the Release build/tests (sanitized config only).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FUZZ_TRIALS="${MCR_CI_FUZZ_TRIALS:-200}"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() { echo "+ $*" >&2; "$@"; }

# Traced + metered smoke solve against a freshly built tree: a
# multi-SCC circuit instance through 4 worker threads, trace and
# metrics exported and syntax-checked. $1 = build dir.
obs_smoke() {
  local bdir="$1"
  local tmp
  tmp="$(mktemp -d)"
  echo "=== obs smoke ($bdir) ==="
  run "$bdir/tools/mcr_gen" circuit --n 4000 --module 16 --seed 42 \
      --out "$tmp/smoke.dimacs"
  run "$bdir/tools/mcr_solve" "$tmp/smoke.dimacs" --threads 4 \
      --trace "$tmp/trace.json" --metrics --metrics-json "$tmp/metrics.json"
  run python3 -m json.tool "$tmp/trace.json" > /dev/null
  run python3 -m json.tool "$tmp/metrics.json" > /dev/null
  rm -rf "$tmp"
}

# Live-daemon observability smoke: mcr_serve with slow-ms 0 (pin every
# request trace) and full-detail sampling, driven by mcr_query. The
# solve's caller-chosen trace id must locate its trace via the TRACE
# verb, the fetched payload must be loadable JSON, and the structured
# request log must be one parseable JSON object per line. $1 = build dir.
svc_obs_smoke() {
  local bdir="$1"
  local tmp
  tmp="$(mktemp -d)"
  echo "=== svc observability smoke ($bdir) ==="
  local sock="$tmp/mcr.sock"
  run "$bdir/tools/mcr_gen" circuit --n 500 --module 16 --seed 7 \
      --out "$tmp/g.dimacs"
  "$bdir/tools/mcr_serve" --socket "$sock" --slow-ms 0 --trace-sample 1.0 \
      --log-json "$tmp/requests.jsonl" --flight-dump none &
  local server_pid=$!
  for _ in $(seq 1 100); do [[ -S "$sock" ]] && break; sleep 0.1; done
  run "$bdir/tools/mcr_query" --socket "$sock" solve "$tmp/g.dimacs" \
      --trace-id ci-smoke-trace > /dev/null
  run "$bdir/tools/mcr_query" --socket "$sock" trace --trace-id ci-smoke-trace \
      --out "$tmp/trace_fetch.json"
  run python3 -m json.tool "$tmp/trace_fetch.json" > /dev/null
  grep -q ci-smoke-trace "$tmp/trace_fetch.json"
  run "$bdir/tools/mcr_query" --socket "$sock" stats > /dev/null
  kill -TERM "$server_pid"
  wait "$server_pid"
  [[ -s "$tmp/requests.jsonl" ]]
  while IFS= read -r line; do
    printf '%s' "$line" | python3 -m json.tool > /dev/null
  done < "$tmp/requests.jsonl"
  grep -q '"verb":"SOLVE"' "$tmp/requests.jsonl"
  grep -q '"trace_id":"ci-smoke-trace"' "$tmp/requests.jsonl"
  rm -rf "$tmp"
}

# Live-daemon load smoke: mcr_serve with the windowed-telemetry pump
# enabled, hammered by a short closed-loop mcr_load run with a mixed
# verb workload and a nonzero cold fraction (so real solves execute,
# not just cache replays). Gates: mcr_load exits 0 (zero transport
# errors), the --output report is json.tool-valid, and the --stats-out
# JSONL time series is non-empty with every line parseable. $1 = build dir.
load_smoke() {
  local bdir="$1"
  local tmp
  tmp="$(mktemp -d)"
  echo "=== load smoke ($bdir) ==="
  local sock="$tmp/mcr.sock"
  "$bdir/tools/mcr_serve" --socket "$sock" --window 60 \
      --stats-interval 0.5 --stats-out "$tmp/stats.jsonl" &
  local server_pid=$!
  for _ in $(seq 1 100); do [[ -S "$sock" ]] && break; sleep 0.1; done
  run "$bdir/tools/mcr_load" --socket "$sock" --concurrency 4 --duration 3 \
      --mix solve=80,stats=10,ping=10 --cold-pct 20 --graph-n 256 \
      --output "$tmp/load_report.json"
  kill -TERM "$server_pid"
  wait "$server_pid"
  run python3 -m json.tool "$tmp/load_report.json" > /dev/null
  [[ -s "$tmp/stats.jsonl" ]]
  while IFS= read -r line; do
    printf '%s' "$line" | python3 -m json.tool > /dev/null
  done < "$tmp/stats.jsonl"
  grep -q '"window"' "$tmp/stats.jsonl"
  rm -rf "$tmp"
}

# Zero-copy store smoke: pack two generated datasets with mcr_pack,
# verify them (and prove a corrupted copy is rejected), then serve pack
# A via --dataset and hot-swap under load: mcr_load runs a mixed
# workload with a nonzero reload weight rotating between both packs,
# --strict gating on zero service errors as the swaps happen. A final
# deterministic RELOAD to pack B must answer with B's fingerprint, a
# post-swap SOLVE against that fingerprint must succeed, and STATS must
# report the advanced generation. $1 = build dir.
store_smoke() {
  local bdir="$1"
  local tmp
  tmp="$(mktemp -d)"
  echo "=== store smoke ($bdir) ==="
  local sock="$tmp/mcr.sock"
  local fp_a fp_b
  fp_a="$(run "$bdir/tools/mcr_pack" gen sprand --n 400 --m 1200 --seed 11 \
      --out "$tmp/a.mcrpack")"
  fp_b="$(run "$bdir/tools/mcr_pack" gen circuit --n 300 --module 16 --seed 22 \
      --out "$tmp/b.mcrpack")"
  run "$bdir/tools/mcr_pack" info "$tmp/a.mcrpack" > /dev/null
  run "$bdir/tools/mcr_pack" verify "$tmp/b.mcrpack" > /dev/null
  # One flipped payload byte must fail verification (typed checksum error).
  cp "$tmp/a.mcrpack" "$tmp/corrupt.mcrpack"
  printf '\xff' | dd of="$tmp/corrupt.mcrpack" bs=1 seek=1000 conv=notrunc status=none
  if "$bdir/tools/mcr_pack" verify "$tmp/corrupt.mcrpack" 2> "$tmp/verify_err"; then
    echo "FAIL: corrupted pack passed mcr_pack verify" >&2
    exit 1
  fi
  grep -q "checksum" "$tmp/verify_err"

  "$bdir/tools/mcr_serve" --socket "$sock" --dataset "$tmp/a.mcrpack" \
      --flight-dump none &
  local server_pid=$!
  for _ in $(seq 1 100); do [[ -S "$sock" ]] && break; sleep 0.1; done
  # Generation 1 solves with no LOAD: the dataset is resident at startup.
  run "$bdir/tools/mcr_query" --socket "$sock" solve "fp:$fp_a" > /dev/null
  # Hot-swap under load: reload rotates B,A while solves are in flight;
  # --strict fails the smoke on any service error during the swaps.
  run "$bdir/tools/mcr_load" --socket "$sock" --concurrency 4 --duration 2 \
      --mix solve=80,stats=10,reload=10 \
      --reload-paths "$tmp/b.mcrpack,$tmp/a.mcrpack" --strict --graph-n 128
  # Deterministic final swap to B: the response must carry B's
  # fingerprint, B must be solvable, and STATS must show the advanced
  # generation pointing at B.
  [[ "$(run "$bdir/tools/mcr_query" --socket "$sock" reload \
      --path "$tmp/b.mcrpack")" == "$fp_b" ]]
  run "$bdir/tools/mcr_query" --socket "$sock" solve "fp:$fp_b" > /dev/null
  run "$bdir/tools/mcr_query" --socket "$sock" stats --json \
      > "$tmp/stats.json"
  python3 - "$tmp/stats.json" "$fp_b" <<'PY'
import json, sys
stats = json.load(open(sys.argv[1]))
ds = stats["dataset"]
assert ds["fingerprint"] == sys.argv[2], ds
assert ds["generation"] >= 2, ds
PY
  kill -TERM "$server_pid"
  wait "$server_pid"
  rm -rf "$tmp"
}

# Fault-tolerant fleet smoke (docs/FLEET.md): three workers behind
# mcr_router, hammered by a --strict mcr_load run while one worker is
# SIGKILLed mid-run and later restarted. Gates: mcr_load exits 0 with
# ZERO client-visible errors (the router absorbed the loss via
# failover), the router's mcr_router_failovers_total counter is
# nonzero (failover actually happened — the kill wasn't a no-op), and
# after the worker restarts the active prober re-closes its breaker:
# mcr_router_backend_up{worker=...} returns to 1. $1 = build dir.
router_smoke() {
  local bdir="$1"
  local tmp
  tmp="$(mktemp -d)"
  echo "=== router smoke ($bdir) ==="
  local w1="$tmp/w1.sock" w2="$tmp/w2.sock" w3="$tmp/w3.sock"
  local rsock="$tmp/router.sock"
  "$bdir/tools/mcr_serve" --socket "$w1" --flight-dump none &
  local w1_pid=$!
  "$bdir/tools/mcr_serve" --socket "$w2" --flight-dump none &
  local w2_pid=$!
  "$bdir/tools/mcr_serve" --socket "$w3" --flight-dump none &
  local w3_pid=$!
  for s in "$w1" "$w2" "$w3"; do
    for _ in $(seq 1 100); do [[ -S "$s" ]] && break; sleep 0.1; done
  done
  "$bdir/tools/mcr_router" --socket "$rsock" \
      --worker "unix:$w1" --worker "unix:$w2" --worker "unix:$w3" \
      --replicas 2 --probe-interval-ms 100 &
  local router_pid=$!
  for _ in $(seq 1 100); do [[ -S "$rsock" ]] && break; sleep 0.1; done

  # Chaos alongside the load: SIGKILL w2 one second into the run (dirty
  # death — no drain, no goodbye), restart it a second later on the same
  # socket path. The prober must notice both transitions.
  ( sleep 1; kill -9 "$w2_pid"
    sleep 1
    "$bdir/tools/mcr_serve" --socket "$w2" --flight-dump none &
    echo $! > "$tmp/w2_revived.pid" ) &
  local chaos_pid=$!
  run "$bdir/tools/mcr_load" --target "unix:$rsock" --concurrency 4 \
      --duration 4 --mix solve=80,stats=10,ping=10 --cold-pct 20 \
      --graph-n 256 --strict --output "$tmp/load_report.json"
  wait "$chaos_pid"
  run python3 -m json.tool "$tmp/load_report.json" > /dev/null

  # Failover must actually have happened, and the revived worker must be
  # probed back to up=1 with a re-closed breaker (poll: the breaker's
  # jittered cooldown decides when the half-open trial runs).
  local up=""
  for _ in $(seq 1 100); do
    up="$("$bdir/tools/mcr_query" --socket "$rsock" stats --json | \
      python3 -c "
import json, sys
stats = json.load(sys.stdin)
counters = stats['metrics']['counters']
assert counters['mcr_router_failovers_total'] > 0, counters
print(stats['metrics']['gauges']['mcr_router_backend_up{worker=\"unix:$w2\"}'])
")"
    [[ "$up" == "1" ]] && break
    sleep 0.1
  done
  if [[ "$up" != "1" ]]; then
    echo "FAIL: revived worker never returned to up=1" >&2
    exit 1
  fi

  kill -TERM "$router_pid"
  wait "$router_pid"
  kill -TERM "$w1_pid" "$w3_pid" "$(cat "$tmp/w2_revived.pid")"
  wait "$w1_pid" "$w3_pid" 2>/dev/null || true
  rm -rf "$tmp"
}

# Benchmark artifact + regression-gate smoke: a tiny grid run twice,
# both artifacts schema-validated, then gated. The strict gate is the
# deterministic self-diff; the cross-run diff only proves the gate can
# compare two independent artifacts without tripping on machine noise.
# $1 = build dir.
bench_smoke() {
  local bdir="$1"
  local tmp
  tmp="$(mktemp -d)"
  echo "=== bench smoke ($bdir) ==="
  run "$bdir/tools/mcr_bench" --name ci-a --workload sprand \
      --solvers howard,ko --max-n 128 --trials 3 --out "$tmp/BENCH_a.json"
  run "$bdir/tools/mcr_bench" --name ci-b --workload sprand \
      --solvers howard,ko --max-n 128 --trials 3 --out "$tmp/BENCH_b.json"
  run python3 -m json.tool "$tmp/BENCH_a.json" > /dev/null
  run python3 -m json.tool "$tmp/BENCH_b.json" > /dev/null
  run "$bdir/tools/mcr_bench_diff" "$tmp/BENCH_a.json" "$tmp/BENCH_a.json"
  run "$bdir/tools/mcr_bench_diff" "$tmp/BENCH_a.json" "$tmp/BENCH_b.json" \
      --threshold 200
  rm -rf "$tmp"
}

if [[ "$FAST" == 0 ]]; then
  echo "=== Release build + tests ==="
  run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  run cmake --build build -j "$JOBS"
  run ctest --test-dir build --output-on-failure -j "$JOBS"
  obs_smoke build
  svc_obs_smoke build
  load_smoke build
  store_smoke build
  router_smoke build
  bench_smoke build

  echo "=== bench baseline gate ==="
  # Gate against the committed baseline: rerun the exact recipe that
  # produced BENCH_baseline.json (single-sourced in bench_all.sh
  # --update-baseline) and diff. The threshold is deliberately generous
  # — the baseline was recorded on a different machine, so only gross
  # regressions (the CI-upper-bound guard plus this margin) fail; tune
  # with MCR_CI_BASELINE_THRESHOLD, regenerate with
  # tools/bench_all.sh --update-baseline (docs/BENCHMARKING.md).
  if [[ -f BENCH_baseline.json ]]; then
    baseline_tmp="$(mktemp -d)"
    run tools/bench_all.sh --update-baseline build "$baseline_tmp/BENCH_candidate.json"
    run build/tools/mcr_bench_diff BENCH_baseline.json \
        "$baseline_tmp/BENCH_candidate.json" \
        --threshold "${MCR_CI_BASELINE_THRESHOLD:-300}"
    rm -rf "$baseline_tmp"
  else
    echo "FAIL: no committed BENCH_baseline.json (regenerate with tools/bench_all.sh --update-baseline)" >&2
    exit 1
  fi

  echo "=== Release hook-absence check ==="
  # The zero-cost contract (docs/ROBUSTNESS.md): without
  # -DMCR_FAULT_INJECTION=ON, MCR_FAULT_POINT folds to a constant and no
  # injector symbol may exist in the archive or the served binaries.
  for artifact in build/src/libmcr.a build/tools/mcr_serve build/tools/mcr_query; do
    if nm -C "$artifact" 2>/dev/null | grep -q -e 'fault::Injector' -e 'fault::detail::decide_hook'; then
      echo "FAIL: fault-injection symbols present in Release $artifact" >&2
      exit 1
    fi
  done
  echo "no injector symbols in Release artifacts"
fi

echo "=== ASan+UBSan build + tests (fault hooks compiled in) ==="
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMCR_SANITIZE=ON \
    -DMCR_FAULT_INJECTION=ON
run cmake --build build-asan -j "$JOBS"
run ctest --test-dir build-asan --output-on-failure -j "$JOBS"
obs_smoke build-asan
svc_obs_smoke build-asan
load_smoke build-asan
store_smoke build-asan
router_smoke build-asan
bench_smoke build-asan

echo "=== store corruption-rejection tests (sanitized) ==="
# Explicitly re-run the pack rejection suite under ASan+UBSan: mmap
# bounds mistakes in the validator are exactly what the sanitizers
# catch, so this leg is the one that must exercise every typed
# rejection path.
run ctest --test-dir build-asan -R 'PackRejection' --output-on-failure

echo "=== chaos smoke (sanitized, seeded fault plans) ==="
# Eight seeds, each run twice: zero invariant violations and the same
# seed must reproduce the same injection trace bit-identically. Each
# seed's in-process server runs a tiny flight recorder (capacity 8,
# everything pinned, full sampling); the sweep itself asserts the
# retention bounds held.
run build-asan/tools/mcr_chaos --seeds 8 --repeat-check

echo "=== chaos crash-test (post-mortem flight dump) ==="
# With the fatal-signal handler installed the harness raises SIGABRT
# after its workload: the process must die abnormally AND leave a
# well-formed Chrome-JSON dump of the retained request traces.
crash_tmp="$(mktemp -d)"
if build-asan/tools/mcr_chaos --seeds 1 --solves 6 \
    --crash-test "$crash_tmp/flight_dump.json"; then
  echo "FAIL: --crash-test exited zero (expected death by SIGABRT)" >&2
  exit 1
fi
run python3 -m json.tool "$crash_tmp/flight_dump.json" > /dev/null
echo "post-mortem flight dump present and well-formed"
rm -rf "$crash_tmp"

echo "=== fuzz smoke (sanitized, ${FUZZ_TRIALS} trials per config) ==="
FUZZ=build-asan/tools/mcr_fuzz
run "$FUZZ" --trials "$FUZZ_TRIALS" --seed 1
run "$FUZZ" --trials "$FUZZ_TRIALS" --seed 2 --negative
run "$FUZZ" --trials "$FUZZ_TRIALS" --seed 3 --ratio
run "$FUZZ" --trials "$FUZZ_TRIALS" --seed 4 --ratio --negative --threads 8

echo "=== TSan build + concurrency tests ==="
# ASan and TSan cannot share a binary, so the thread-interleaving tests
# (work-stealing pool, parallel SCC driver, the svc server) get their own
# config. Only the concurrency-heavy suites run here: TSan slows
# execution ~10x and the sequential suites add no interleavings.
run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMCR_SANITIZE_THREAD=ON \
    -DMCR_FAULT_INJECTION=ON
run cmake --build build-tsan -j "$JOBS" --target test_parallel_driver test_tiled_kernels \
    test_obs test_svc test_router test_fault mcr_chaos
run build-tsan/tests/test_parallel_driver
run build-tsan/tests/test_tiled_kernels
run build-tsan/tests/test_obs
run build-tsan/tests/test_svc
run build-tsan/tests/test_router
run build-tsan/tests/test_fault
# Worker-death-heavy plan under TSan: retire/respawn vs. destructor is
# the raciest path in the pool's self-healing.
run build-tsan/tools/mcr_chaos --seeds 4 \
    --plan "worker_death=0.5,worker_stall=0.2,read_eintr=0.1,stall_ms=1,max_deaths=4,max_per_site=64"

echo "=== ci.sh: all green ==="
