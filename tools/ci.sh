#!/usr/bin/env bash
# CI gate: build Release and ASan+UBSan, run the full test suite in
# both, then run a differential-fuzz smoke (mean + ratio, serial and
# threaded) under the sanitizers so exactness bugs of the Howard-rescale
# class cannot regress silently. Each config also runs a traced +
# metered multi-SCC smoke solve and validates the exported trace /
# metrics JSON with python3 -m json.tool.
#
#   tools/ci.sh [--fast]
#
# --fast skips the Release build/tests (sanitized config only).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
FUZZ_TRIALS="${MCR_CI_FUZZ_TRIALS:-200}"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() { echo "+ $*" >&2; "$@"; }

# Traced + metered smoke solve against a freshly built tree: a
# multi-SCC circuit instance through 4 worker threads, trace and
# metrics exported and syntax-checked. $1 = build dir.
obs_smoke() {
  local bdir="$1"
  local tmp
  tmp="$(mktemp -d)"
  echo "=== obs smoke ($bdir) ==="
  run "$bdir/tools/mcr_gen" circuit --n 4000 --module 16 --seed 42 \
      --out "$tmp/smoke.dimacs"
  run "$bdir/tools/mcr_solve" "$tmp/smoke.dimacs" --threads 4 \
      --trace "$tmp/trace.json" --metrics --metrics-json "$tmp/metrics.json"
  run python3 -m json.tool "$tmp/trace.json" > /dev/null
  run python3 -m json.tool "$tmp/metrics.json" > /dev/null
  rm -rf "$tmp"
}

if [[ "$FAST" == 0 ]]; then
  echo "=== Release build + tests ==="
  run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  run cmake --build build -j "$JOBS"
  run ctest --test-dir build --output-on-failure -j "$JOBS"
  obs_smoke build
fi

echo "=== ASan+UBSan build + tests ==="
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMCR_SANITIZE=ON
run cmake --build build-asan -j "$JOBS"
run ctest --test-dir build-asan --output-on-failure -j "$JOBS"
obs_smoke build-asan

echo "=== fuzz smoke (sanitized, ${FUZZ_TRIALS} trials per config) ==="
FUZZ=build-asan/tools/mcr_fuzz
run "$FUZZ" --trials "$FUZZ_TRIALS" --seed 1
run "$FUZZ" --trials "$FUZZ_TRIALS" --seed 2 --negative
run "$FUZZ" --trials "$FUZZ_TRIALS" --seed 3 --ratio
run "$FUZZ" --trials "$FUZZ_TRIALS" --seed 4 --ratio --negative --threads 8

echo "=== ci.sh: all green ==="
