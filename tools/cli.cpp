#include "cli.h"

#include <stdexcept>

namespace mcr::cli {

std::string Options::get(const std::string& key, const std::string& fallback) const {
  const auto it = named.find(key);
  return it == named.end() ? fallback : it->second;
}

std::vector<std::string> Options::get_all(const std::string& key) const {
  const auto it = repeated.find(key);
  return it == repeated.end() ? std::vector<std::string>{} : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = named.find(key);
  if (it == named.end()) return fallback;
  std::size_t pos = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(it->second, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects an integer, got '" +
                                it->second + "'");
  }
  if (pos != it->second.size()) {
    throw std::invalid_argument("option --" + key + " expects an integer, got '" +
                                it->second + "'");
  }
  return v;
}

std::int64_t Options::get_int_in(const std::string& key, std::int64_t fallback,
                                 std::int64_t min, std::int64_t max) const {
  const std::int64_t v = get_int(key, fallback);
  if (v < min || v > max) {
    throw std::invalid_argument("option --" + key + " expects an integer in [" +
                                std::to_string(min) + ", " + std::to_string(max) +
                                "], got " + std::to_string(v));
  }
  return v;
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = named.find(key);
  if (it == named.end()) return fallback;
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                it->second + "'");
  }
  if (pos != it->second.size()) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                it->second + "'");
  }
  return v;
}

Options parse(const std::vector<std::string>& args) {
  Options out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional.push_back(arg);
      continue;
    }
    if (arg.size() == 2) throw std::invalid_argument("lone '--' is not a valid option");
    if (arg[2] == '-') throw std::invalid_argument("malformed option: " + arg);
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    std::string key;
    std::string value;
    if (eq != std::string::npos) {
      key = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      key = body;
      value = args[i + 1];
      ++i;
    } else {
      key = body;
    }
    out.named[key] = value;
    out.repeated[key].push_back(value);
  }
  return out;
}

Options parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

}  // namespace mcr::cli
