// Minimal command-line option parsing shared by the mcr tools.
// Deliberately tiny: "--key value", "--key=value", bare "--flag", and
// positional arguments. Parsing is a pure function over strings so the
// test suite can drive it without spawning processes.
#ifndef MCR_TOOLS_CLI_H
#define MCR_TOOLS_CLI_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcr::cli {

struct Options {
  std::map<std::string, std::string> named;  // flag -> value ("" for bare flags; last wins)
  /// Every value of every flag, in command-line order. A flag given N
  /// times has N entries here while `named` keeps only the last — so
  /// repeatable flags (e.g. mcr_router --worker, mcr_load --target)
  /// coexist with the last-wins convention the other tools rely on.
  std::map<std::string, std::vector<std::string>> repeated;
  std::vector<std::string> positional;

  [[nodiscard]] bool has(const std::string& key) const { return named.count(key) > 0; }
  /// Value of --key, or fallback when absent.
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = "") const;
  /// All values of --key in the order given; empty when absent.
  [[nodiscard]] std::vector<std::string> get_all(const std::string& key) const;
  /// Integer value of --key; throws std::invalid_argument on garbage.
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// get_int constrained to [min, max]; throws std::invalid_argument
  /// (naming the flag and the bounds) when the value falls outside.
  /// Used for count-like flags such as --threads and --trials.
  [[nodiscard]] std::int64_t get_int_in(const std::string& key, std::int64_t fallback,
                                        std::int64_t min, std::int64_t max) const;
  /// Floating-point value of --key; throws std::invalid_argument on garbage.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
};

/// Parses argv[1..argc). Throws std::invalid_argument on malformed
/// input (e.g. "---x" or a lone "--").
[[nodiscard]] Options parse(const std::vector<std::string>& args);
[[nodiscard]] Options parse(int argc, const char* const* argv);

}  // namespace mcr::cli

#endif  // MCR_TOOLS_CLI_H
