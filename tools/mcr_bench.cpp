// mcr_bench — run a named workload grid and write a BENCH_<name>.json
// artifact: per-cell median/MAD/95% bootstrap CI wall times, driver
// phase breakdown, and hardware counters (perf_event_open, degrading to
// "unavailable" in containers). Artifacts are the repo's perf
// trajectory; compare two with mcr_bench_diff.
//
//   mcr_bench [--name NAME] [--workload sprand|sprand_ratio|circuit]
//             [--solvers a,b,c] [--out FILE] [--trials N] [--warmup N]
//             [--max-n N] [--threads N] [--tile-arcs N] [--no-phases]
//             [--list]
//
//   --name NAME     artifact name (default: the workload); the file
//                   defaults to BENCH_<name>.json
//   --workload W    sprand        Table-2 SPRAND grid, mean solvers
//                   sprand_ratio  transit U[1,10] grid, ratio solvers
//                   circuit       synthetic LGSynth-style suite
//   --solvers CSV   registry solver names (default per workload)
//   --trials N      timed repetitions per cell (default 5)
//   --warmup N      discarded warmup runs per cell (default 1)
//   --max-n N       drop grid cells with more than N nodes
//   --n N --m M     replace the sprand grids with one custom cell
//                   (single-instance A/B runs, e.g. tiling studies)
//   --threads N     per-SCC worker threads for the measured solves
//   --tile-arcs N   arc-tile granularity for intra-SCC parallelism
//                   (0 = untiled; results are bit-identical either way)
//   --no-phases     skip the traced phase-breakdown pass
//   --list          print workloads and their default solver sets
//
// The grid follows MCR_BENCH_SCALE (small | medium | full) like every
// bench binary. Each cell measures one fixed instance (trial 0 of the
// cell's seed schedule) so medians are comparable run-over-run; the
// cross-seed spread lives in the legacy bench binaries.
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchkit/artifact.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "cli.h"
#include "core/registry.h"
#include "gen/circuit.h"
#include "obs/build_info.h"
#include "obs/perf_counters.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

struct WorkloadSpec {
  std::string name;
  std::vector<std::string> default_solvers;
};

const std::vector<WorkloadSpec>& workload_specs() {
  static const std::vector<WorkloadSpec> specs{
      {"sprand", {"howard", "ko", "yto", "karp"}},
      {"sprand_ratio", {"howard_ratio", "yto_ratio", "lawler_ratio"}},
      {"circuit", {"howard", "ko", "yto", "karp", "dg"}},
  };
  return specs;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

struct GridInstance {
  std::string instance;
  NodeId n;
  ArcId m;
  Graph graph;
};

std::vector<GridInstance> build_grid(const std::string& workload, NodeId max_n,
                                     NodeId custom_n, ArcId custom_m) {
  const Scale scale = bench_scale();
  std::vector<GridInstance> out;
  if (custom_n != 0 && workload != "circuit") {
    const GridCell cell{custom_n, custom_m};
    const bool ratio = workload == "sprand_ratio";
    Graph g = ratio ? ratio_instance(cell, 0) : table2_instance(cell, 0);
    out.push_back(GridInstance{
        "n" + std::to_string(cell.n) + "_m" + std::to_string(cell.m), cell.n,
        cell.m, std::move(g)});
    return out;
  }
  if (workload == "circuit") {
    for (const CircuitCase& c : circuit_suite(scale)) {
      Graph g = gen::circuit(c.config);
      if (max_n != 0 && g.num_nodes() > max_n) continue;
      const NodeId n = g.num_nodes();
      const ArcId m = g.num_arcs();
      out.push_back(GridInstance{c.name, n, m, std::move(g)});
    }
    return out;
  }
  const bool ratio = workload == "sprand_ratio";
  for (const GridCell cell : table2_grid(scale)) {
    if (max_n != 0 && cell.n > max_n) continue;
    Graph g = ratio ? ratio_instance(cell, 0) : table2_instance(cell, 0);
    out.push_back(GridInstance{
        "n" + std::to_string(cell.n) + "_m" + std::to_string(cell.m), cell.n,
        cell.m, std::move(g)});
  }
  return out;
}

int run(const cli::Options& opt) {
  if (opt.has("list")) {
    for (const WorkloadSpec& spec : workload_specs()) {
      std::cout << spec.name << ":";
      for (const auto& s : spec.default_solvers) std::cout << " " << s;
      std::cout << "\n";
    }
    return 0;
  }

  const std::string workload = opt.get("workload", "sprand");
  const WorkloadSpec* spec = nullptr;
  for (const WorkloadSpec& s : workload_specs()) {
    if (s.name == workload) spec = &s;
  }
  if (spec == nullptr) {
    throw std::invalid_argument("unknown workload '" + workload +
                                "' (see --list)");
  }
  const std::string name = opt.get("name", workload);
  const std::string out_path = opt.get("out", "BENCH_" + name + ".json");
  const std::vector<std::string> solvers =
      opt.has("solvers") ? split_csv(opt.get("solvers")) : spec->default_solvers;
  for (const std::string& solver : solvers) {
    (void)SolverRegistry::instance().create(solver);  // validate early
  }
  RepeatOptions repeat;
  repeat.repetitions = static_cast<int>(opt.get_int_in("trials", 5, 1, 1000));
  repeat.warmup = static_cast<int>(opt.get_int_in("warmup", 1, 0, 100));
  const SolveOptions solve_options{
      .num_threads = static_cast<int>(opt.get_int_in("threads", 1, 0, 4096)),
      .tile_arcs =
          static_cast<std::int32_t>(opt.get_int_in("tile-arcs", 0, 0, 1 << 30))};
  const auto max_n = static_cast<NodeId>(opt.get_int_in("max-n", 0, 0, 1 << 26));

  obs::PerfCounterGroup perf;
  BenchArtifact artifact;
  artifact.name = name;
  artifact.scale = scale_name(bench_scale());
  artifact.warmup = repeat.warmup;
  artifact.repetitions = repeat.repetitions;
  artifact.counters_backend = perf.hardware() ? perf.backend() : "unavailable";
  artifact.counters_fallback_reason = perf.fallback_reason();
  artifact.build = obs::build_info();

  std::cout << "mcr_bench " << name << ": workload " << workload << ", scale "
            << artifact.scale << ", " << repeat.repetitions << " trials (+"
            << repeat.warmup << " warmup), counters "
            << artifact.counters_backend
            << (perf.hardware() ? "" : " (" + perf.fallback_reason() + ")")
            << "\n";

  const auto custom_n = static_cast<NodeId>(opt.get_int_in("n", 0, 0, 1 << 26));
  const auto custom_m = static_cast<ArcId>(
      opt.get_int_in("m", custom_n, custom_n, std::int64_t{1} << 30));
  const std::vector<GridInstance> grid =
      build_grid(workload, max_n, custom_n, custom_m);
  if (grid.empty()) throw std::runtime_error("workload grid is empty");

  TimeBudget budget(default_time_budget());
  TextTable table({"instance", "solver", "median", "mad", "ci95", "cycles"});
  for (const GridInstance& gi : grid) {
    for (const std::string& solver : solvers) {
      BenchCell cell;
      cell.workload = workload;
      cell.instance = gi.instance;
      cell.n = gi.n;
      cell.m = gi.m;
      cell.solver = solver;
      if (budget.should_skip(solver)) {
        cell.skip_reason = "time";
      } else {
        const RepeatedRun run = time_solver_repeated(
            solver, gi.graph, repeat, perf.hardware() ? &perf : nullptr,
            2ULL << 30, solve_options);
        if (!run.ran) {
          cell.skip_reason = run.skip_reason;
        } else {
          cell.ran = true;
          cell.seconds = run.seconds;
          budget.record(solver, run.seconds.median);
          for (std::size_t i = 0; i < obs::kNumPerfCounters; ++i) {
            if (!run.counters.available[i]) continue;
            cell.counters[obs::to_string(static_cast<obs::PerfCounter>(i))] =
                static_cast<double>(run.counters.value[i]);
          }
          cell.counters_available = !cell.counters.empty();
          if (!opt.has("no-phases")) {
            cell.phases = phase_breakdown(solver, gi.graph, solve_options);
          }
        }
      }
      const auto cycles = cell.counters.find("cycles");
      table.add_row(
          {gi.instance, solver,
           cell.ran ? fmt_ms(cell.seconds.median) : "N/A(" + cell.skip_reason + ")",
           cell.ran ? fmt_ms(cell.seconds.mad) : "-",
           cell.ran ? "[" + fmt_ms(cell.seconds.ci_lower) + ", " +
                          fmt_ms(cell.seconds.ci_upper) + "]"
                    : "-",
           cycles != cell.counters.end()
               ? std::to_string(static_cast<long long>(cycles->second))
               : "-"});
      artifact.cells.push_back(std::move(cell));
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  table.print(std::cout);

  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  write_artifact(out, artifact);
  std::cout << "[artifact: " << out_path << " — schema v" << kBenchSchemaVersion
            << ", " << artifact.cells.size() << " cells; compare with "
            << "mcr_bench_diff]\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const mcr::cli::Options opt = mcr::cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << mcr::obs::version_string("mcr_bench");
      return 0;
    }
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "mcr_bench: " << e.what() << "\n";
    return 1;
  }
}
