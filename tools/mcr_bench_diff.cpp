// mcr_bench_diff — compare two BENCH_*.json artifacts and gate on
// regressions.
//
//   mcr_bench_diff BASELINE CANDIDATE [--threshold PCT] [--all-cells]
//
// A cell regresses when the candidate median is more than PCT% slower
// (default 5%) AND above the baseline's 95% bootstrap CI upper bound —
// the CI guard keeps noisy cells from flagging. Improvements use the
// symmetric rule. Exit codes: 0 clean, 1 at least one regression,
// 2 usage or artifact errors.
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchkit/artifact.h"
#include "cli.h"
#include "obs/build_info.h"

namespace {

using namespace mcr::bench;

int run(const mcr::cli::Options& opt) {
  if (opt.positional.size() != 2) {
    std::cerr << "usage: mcr_bench_diff BASELINE CANDIDATE [--threshold PCT]"
                 " [--all-cells]\n";
    return 2;
  }
  DiffOptions options;
  options.threshold_pct = opt.get_double("threshold", options.threshold_pct);
  const BenchArtifact baseline = load_artifact(opt.positional[0]);
  const BenchArtifact candidate = load_artifact(opt.positional[1]);

  std::cout << "baseline:  " << opt.positional[0] << " (" << baseline.name
            << ", " << baseline.build.git_sha << ", scale " << baseline.scale
            << ")\n";
  std::cout << "candidate: " << opt.positional[1] << " (" << candidate.name
            << ", " << candidate.build.git_sha << ", scale " << candidate.scale
            << ")\n";
  if (baseline.scale != candidate.scale) {
    std::cout << "warning: artifacts were produced at different scales; "
                 "only matching cells compare\n";
  }
  std::cout << "threshold: " << options.threshold_pct << "% over baseline CI\n";

  const DiffReport report = diff_artifacts(baseline, candidate, options);
  print_diff(std::cout, report, opt.has("all-cells"));
  return report.regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const mcr::cli::Options opt = mcr::cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << mcr::obs::version_string("mcr_bench_diff");
      return 0;
    }
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "mcr_bench_diff: " << e.what() << "\n";
    return 2;
  }
}
