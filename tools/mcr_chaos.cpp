// mcr_chaos — end-to-end chaos harness for the solve service.
//
// For each seed, builds a fault::Plan, installs a fault::Injector,
// starts an in-process Server on a fresh unix socket, and drives it
// through a fixed sequential client workload (LOAD + SOLVE over known
// strongly connected graphs, with and without deadlines). The harness
// keeps its own copy of every graph it loads, so it can hold the server
// to the full contract under injected faults:
//
//   * every "status":"ok" SOLVE response must carry a witness cycle
//     that core::verify_result certifies as optimal — a fault may make
//     a request fail, but it must never make a wrong answer;
//   * every "status":"error" response must carry a documented typed
//     code (docs/ROBUSTNESS.md), never a raw what() leaking through;
//   * transport drops are survivable: reconnect + retry must succeed
//     against the still-alive server;
//   * stop_and_drain() must complete while faults are still firing.
//
// The client thread runs under fault::SuppressScope so only server
// threads draw injection decisions; with the sequential workload the
// per-site sequence numbering is then deterministic and --repeat-check
// can assert that re-running a seed reproduces the injection trace
// bit-identically (the determinism contract from src/fault/fault.h).
//
// In a build without MCR_FAULT_INJECTION the hooks fold to constants;
// the tool says so and degrades to a pure verification sweep.
//
// The in-process servers run their flight recorders in a deliberately
// tiny configuration (ring/pinned capacity --flight, slow-ms 0, head
// sampling 1.0 — every request pinned with full solver detail), and the
// sweep asserts after every seed that both retention sets stayed within
// capacity: the flight recorder must hold its memory bound under
// sustained faulty load. --crash-test PATH additionally installs the
// fatal-signal dump handler after the first seed's workload and raises
// SIGABRT: the process must die by the signal (nonzero exit) *and*
// leave a well-formed Chrome-JSON ring dump at PATH — the post-mortem
// contract ci.sh validates.
//
//   mcr_chaos [--seeds N] [--seed-base B] [--solves N] [--plan SPEC]
//             [--repeat-check] [--trace] [--flight N]
//             [--crash-test PATH]
//
// Exit status: 0 = no invariant violations, 1 = violations (each is
// printed), 2 = usage error; --crash-test dies by SIGABRT.
#include <unistd.h>

#include <csignal>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli.h"
#include "core/verify.h"
#include "fault/fault.h"
#include "gen/sprand.h"
#include "graph/io.h"
#include "obs/flight_recorder.h"
#include "support/json.h"
#include "svc/client.h"
#include "svc/errors.h"
#include "svc/server.h"

namespace {

using namespace mcr;

// Moderate rates at every site. max_per_site keeps a sweep bounded (a
// high-probability EINTR plan must not starve a retry loop forever).
constexpr const char* kDefaultPlan =
    "alloc=0.03,read_eintr=0.06,read_short=0.06,read_reset=0.02,"
    "write_eintr=0.06,write_short=0.06,write_reset=0.02,"
    "worker_stall=0.05,worker_death=0.1,clock_skip=0.1,phase=0.03,"
    "stall_ms=1,max_per_site=64";

bool is_documented_code(const std::string& code) {
  return code == svc::kErrBadRequest || code == svc::kErrNotFound ||
         code == svc::kErrBusy || code == svc::kErrDeadline ||
         code == svc::kErrFrameTooLarge || code == svc::kErrBadFrame ||
         code == svc::kErrShuttingDown || code == svc::kErrInternal;
}

/// The fixed graph set: strongly connected (SPRAND has a Hamiltonian
/// backbone), so every solve must report has_cycle. Content is constant
/// across seeds — only the fault schedule varies.
std::vector<Graph> make_graphs() {
  std::vector<Graph> graphs;
  graphs.push_back(gen::sprand({.n = 16, .m = 48, .seed = 11}));
  graphs.push_back(gen::sprand({.n = 40,
                                .m = 120,
                                .min_weight = -5000,
                                .max_weight = 5000,
                                .min_transit = 1,
                                .max_transit = 5,
                                .seed = 23}));
  graphs.push_back(gen::sprand({.n = 8, .m = 20, .seed = 5}));
  return graphs;
}

std::string to_dimacs(const Graph& g) {
  std::ostringstream os;
  write_dimacs(os, g, "mcr_chaos workload instance");
  return os.str();
}

struct SeedReport {
  std::uint64_t seed = 0;
  int requests = 0;
  int ok = 0;
  int typed_errors = 0;
  int transport_failures = 0;
  std::uint64_t injections = 0;
  std::string trace;
  std::vector<std::string> violations;
};

/// Rebuilds a CycleResult from a response's embedded result schema and
/// certifies it against the locally kept graph.
void check_ok_response(const Graph& g, const json::Value& response, bool ratio,
                       const std::string& what, SeedReport& report) {
  const json::Value& result = response.at("result");
  if (!result.at("has_cycle").as_bool()) {
    report.violations.push_back(what +
                                ": ok response claims no cycle on a strongly "
                                "connected graph");
    return;
  }
  CycleResult r;
  r.has_cycle = true;
  r.value = Rational(
      static_cast<std::int64_t>(result.at("value_num").as_double()),
      static_cast<std::int64_t>(result.at("value_den").as_double()));
  for (const json::Value& a : result.at("cycle_arcs").as_array()) {
    r.cycle.push_back(static_cast<ArcId>(a.as_double()));
  }
  const VerifyOutcome v = verify_result(
      g, r, ratio ? ProblemKind::kCycleRatio : ProblemKind::kCycleMean);
  if (!v.ok) {
    report.violations.push_back(what + ": witness failed verification: " +
                                v.message);
  }
}

/// One seeded session against a fresh server. The injector (when the
/// hooks are compiled in) is installed by the caller.
void run_workload(const std::string& socket_path, const std::vector<Graph>& graphs,
                  const std::vector<std::string>& dimacs, int solves,
                  std::uint64_t seed, SeedReport& report) {
  // Suppress client-side draws: only server threads consume sequence
  // numbers, which keeps the trace deterministic (see file comment).
  fault::SuppressScope suppress;

  svc::Client client = svc::Client::connect_unix(socket_path);
  svc::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 1.0;
  policy.max_backoff_ms = 20.0;
  policy.budget_ms = 10'000.0;
  policy.jitter_seed = seed * 0x9e3779b97f4a7c15ULL + 1;
  client.set_retry_policy(policy);

  const auto note_typed = [&](const svc::ServiceError& e, const std::string& what) {
    ++report.typed_errors;
    if (!is_documented_code(e.code())) {
      report.violations.push_back(what + ": undocumented error code '" + e.code() +
                                  "' (" + e.what() + ")");
    }
  };
  const auto recover_transport = [&](const std::string& what) {
    ++report.transport_failures;
    try {
      client.reconnect();
    } catch (const std::exception& e) {
      report.violations.push_back(what + ": reconnect to live server failed: " +
                                  e.what());
    }
  };

  // LOAD each instance (idempotent; INTERNAL here is an injected alloc
  // failure, so plain repetition is the right recovery).
  std::vector<std::string> fingerprints(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const std::string what = "load[" + std::to_string(i) + "]";
    for (int attempt = 0; attempt < 6 && fingerprints[i].empty(); ++attempt) {
      ++report.requests;
      try {
        fingerprints[i] = client.load_dimacs_text(dimacs[i]);
        ++report.ok;
      } catch (const svc::ServiceError& e) {
        note_typed(e, what);
      } catch (const svc::TransportError&) {
        recover_transport(what);
      }
    }
  }

  for (int i = 0; i < solves; ++i) {
    const std::size_t gi = static_cast<std::size_t>(i) % graphs.size();
    if (fingerprints[gi].empty()) continue;  // LOAD never survived injection
    const bool ratio = (i % 2) == 1;
    const std::string objective = ratio ? "min_ratio" : "min_mean";
    const double deadline_ms = (i % 3) == 2 ? 60'000.0 : 0.0;
    const std::string what =
        "solve[" + std::to_string(i) + " " + objective + " g" + std::to_string(gi) +
        (deadline_ms > 0 ? " deadline" : "") + "]";
    ++report.requests;
    try {
      const json::Value r =
          client.solve_retry(fingerprints[gi], objective, "", deadline_ms);
      ++report.ok;
      check_ok_response(graphs[gi], r, ratio, what, report);
    } catch (const svc::ServiceError& e) {
      note_typed(e, what);
    } catch (const svc::TransportError&) {
      recover_transport(what);
    }

    if ((i % 4) == 3) {
      ++report.requests;
      try {
        const json::Value h = client.health();
        if (h.string_or("status", "") == "ok") {
          ++report.ok;
          (void)h.at("healthy").as_bool();  // contract: field present
        } else {
          ++report.typed_errors;
          const std::string code = h.string_or("code", "");
          if (!is_documented_code(code)) {
            report.violations.push_back("health: undocumented error code '" +
                                        code + "'");
          }
        }
      } catch (const svc::TransportError&) {
        recover_transport("health");
      }
    }
  }
}

SeedReport run_seed(std::uint64_t seed, const fault::Plan& base_plan,
                    const std::vector<Graph>& graphs,
                    const std::vector<std::string>& dimacs, int solves, int run_index,
                    std::size_t flight_capacity, const std::string& crash_dump) {
  SeedReport report;
  report.seed = seed;

  std::ostringstream path;
  path << "/tmp/mcr_chaos." << ::getpid() << "." << seed << "." << run_index
       << ".sock";

  svc::ServerOptions options;
  options.unix_socket_path = path.str();
  options.solve_threads = 2;
  options.queue_capacity = 8;
  // Leave the idle reaper off: it is wall-clock-driven and would make
  // the injection trace timing-dependent.
  options.idle_timeout_ms = 0;
  // A deliberately tiny flight recorder under maximum pressure: slow-ms
  // 0 pins every request and sample 1.0 records full solver detail, so
  // both retention sets churn through eviction constantly. The bound
  // checks after the workload are the memory contract.
  options.flight.capacity = flight_capacity;
  options.flight.pinned_capacity = flight_capacity;
  options.flight.slow_ms = 0.0;
  options.flight.sample_rate = 1.0;

#if defined(MCR_FAULT_INJECTION) && MCR_FAULT_INJECTION
  fault::Plan plan = base_plan;
  plan.seed = seed;
  fault::Injector injector(plan);
  fault::Injector::install(&injector);
#else
  (void)base_plan;
#endif

  svc::Server server(options);
  try {
    server.start();
    run_workload(options.unix_socket_path, graphs, dimacs, solves, seed, report);
  } catch (const std::exception& e) {
    report.violations.push_back(std::string("session aborted: ") + e.what());
  }

  // Memory contract: however the faults fell, the flight recorder must
  // have stayed within both of its configured capacities.
  if (server.flight().ring_size() > options.flight.capacity) {
    report.violations.push_back(
        "flight recorder ring exceeded capacity: " +
        std::to_string(server.flight().ring_size()) + " > " +
        std::to_string(options.flight.capacity));
  }
  if (server.flight().pinned_size() > options.flight.pinned_capacity) {
    report.violations.push_back(
        "flight recorder pinned set exceeded capacity: " +
        std::to_string(server.flight().pinned_size()) + " > " +
        std::to_string(options.flight.pinned_capacity));
  }

  if (!crash_dump.empty()) {
    // Post-mortem contract: die by SIGABRT with the dump handler
    // installed. The handler writes the retained ring as Chrome JSON to
    // `crash_dump` and re-raises with the default disposition, so the
    // process exits abnormally — ci.sh asserts both the nonzero status
    // and that the artifact parses.
    std::cout << "mcr_chaos: crash-test: raising SIGABRT with "
              << server.flight().ring_size() << " retained trace(s); dump -> "
              << crash_dump << std::endl;
    obs::install_fatal_dump(&server.flight(), crash_dump);
    std::raise(SIGABRT);
  }

  // Crash-only contract: shutdown must drain and join even while the
  // plan is still firing (a hang here fails the whole sweep).
  server.stop_and_drain();

#if defined(MCR_FAULT_INJECTION) && MCR_FAULT_INJECTION
  report.injections = injector.fired_count();
  report.trace = injector.trace_string();
  fault::Injector::install(nullptr);
#endif
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  cli::Options opt;
  int seeds = 8;
  int solves = 12;
  std::uint64_t seed_base = 1;
  std::size_t flight_capacity = 8;
  std::string crash_dump;
  fault::Plan base_plan;
  try {
    opt = cli::parse(argc, argv);
    seeds = static_cast<int>(opt.get_int_in("seeds", 8, 1, 100000));
    solves = static_cast<int>(opt.get_int_in("solves", 12, 1, 100000));
    seed_base = static_cast<std::uint64_t>(opt.get_int("seed-base", 1));
    flight_capacity =
        static_cast<std::size_t>(opt.get_int_in("flight", 8, 1, 1 << 20));
    crash_dump = opt.get("crash-test");
    base_plan = fault::Plan::parse(opt.get("plan", kDefaultPlan));
  } catch (const std::exception& e) {
    std::cerr << "mcr_chaos: " << e.what() << "\n"
              << "usage: mcr_chaos [--seeds N] [--seed-base B] [--solves N]\n"
              << "                 [--plan SPEC] [--repeat-check] [--trace]\n"
              << "                 [--flight N] [--crash-test PATH]\n";
    return 2;
  }

#if !defined(MCR_FAULT_INJECTION) || !MCR_FAULT_INJECTION
  std::cout << "mcr_chaos: fault hooks are compiled out of this build "
               "(configure with -DMCR_FAULT_INJECTION=ON);\n"
               "running the workload as a pure verification sweep.\n";
#endif

  const std::vector<Graph> graphs = make_graphs();
  std::vector<std::string> dimacs;
  dimacs.reserve(graphs.size());
  for (const Graph& g : graphs) dimacs.push_back(to_dimacs(g));

  int violations = 0;
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    SeedReport report = run_seed(seed, base_plan, graphs, dimacs, solves, 0,
                                 flight_capacity, crash_dump);

    if (opt.has("repeat-check")) {
      const SeedReport again = run_seed(seed, base_plan, graphs, dimacs, solves, 1,
                                        flight_capacity, crash_dump);
      if (again.trace != report.trace) {
        report.violations.push_back(
            "non-deterministic injection trace across identical runs:\n  first:  " +
            report.trace + "\n  second: " + again.trace);
      }
      for (const std::string& v : again.violations) {
        report.violations.push_back("(repeat) " + v);
      }
    }

    std::cout << "seed " << report.seed << ": " << report.requests << " requests, "
              << report.ok << " ok, " << report.typed_errors << " typed errors, "
              << report.transport_failures << " transport failures, "
              << report.injections << " injections fired\n";
    if (opt.has("trace") && !report.trace.empty()) {
      std::cout << "  trace: " << report.trace << "\n";
    }
    for (const std::string& v : report.violations) {
      std::cout << "  VIOLATION: " << v << "\n";
      ++violations;
    }
  }

  if (violations > 0) {
    std::cout << "mcr_chaos: " << violations << " invariant violation(s)\n";
    return 1;
  }
  std::cout << "mcr_chaos: all invariants held across " << seeds << " seed(s)\n";
  return 0;
}
