// mcr_fuzz — randomized differential testing of the whole registry.
//
//   mcr_fuzz [--trials 200] [--seed 1] [--max-n 96] [--ratio]
//            [--negative] [--verbose] [--threads N]
//
// --threads N routes every solve through the parallel SCC driver with N
// workers (0 = hardware), so the fuzzer also cross-checks the
// determinism of the parallel merge.
//
// Each trial draws a random instance (SPRAND / circuit / structured,
// random shape parameters), runs every registered solver of the problem
// kind, and checks that (a) all values agree exactly and (b) EVERY
// solver's result passes the exact optimality certificate — a solver
// returning the right value with a bogus witness cycle is caught. Any
// mismatch prints the instance in DIMACS form for replay with mcr_solve
// and exits nonzero. This is the long-running companion to the bounded
// cross-validation tests in tests/.
#include <iostream>

#include "cli.h"
#include "core/driver.h"
#include "core/registry.h"
#include "core/verify.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/io.h"
#include "support/prng.h"

namespace {

using namespace mcr;

Graph random_instance(Prng& rng, NodeId max_n, bool ratio, bool negative) {
  const int family = static_cast<int>(rng.uniform_int(0, 3));
  const NodeId n = static_cast<NodeId>(rng.uniform_int(4, max_n));
  switch (family) {
    case 0:
    case 1: {  // SPRAND dominates, as in the paper
      gen::SprandConfig cfg;
      cfg.n = n;
      cfg.m = n + static_cast<ArcId>(rng.uniform_int(0, 3 * n));
      cfg.min_weight = negative && rng.bernoulli(0.5) ? -10000 : 1;
      cfg.max_weight = 10000;
      if (ratio) {
        cfg.min_transit = 1;
        cfg.max_transit = rng.uniform_int(1, 8);
      }
      cfg.seed = rng.fork_seed();
      return gen::sprand(cfg);
    }
    case 2: {
      gen::CircuitConfig cfg;
      cfg.registers = n;
      cfg.module_size = static_cast<NodeId>(rng.uniform_int(4, 16));
      cfg.avg_fanout = 1.2 + rng.uniform_real() * 0.8;
      cfg.seed = rng.fork_seed();
      return gen::circuit(cfg);
    }
    default:
      return gen::torus(static_cast<NodeId>(rng.uniform_int(2, 8)),
                        static_cast<NodeId>(rng.uniform_int(2, 8)), 1, 1000,
                        rng.fork_seed());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  try {
    const cli::Options opt = cli::parse(argc, argv);
    const std::int64_t trials = opt.get_int("trials", 200);
    const bool ratio = opt.has("ratio");
    const bool verbose = opt.has("verbose");
    const SolveOptions solve_options{
        .num_threads = static_cast<int>(opt.get_int_in("threads", 1, 0, 4096))};
    Prng rng(static_cast<std::uint64_t>(opt.get_int("seed", 1)));
    const auto kind = ratio ? ProblemKind::kCycleRatio : ProblemKind::kCycleMean;

    std::vector<std::string> solvers;
    for (const auto& name : SolverRegistry::instance().names(kind)) {
      if (name.rfind("brute_force", 0) == 0) continue;
      if (name == "ho_ratio") continue;  // Theta(Tn) memory; covered in tests
      solvers.push_back(name);
    }
    std::cout << "fuzzing " << solvers.size() << " solvers, " << trials << " trials ("
              << (ratio ? "ratio" : "mean") << ")\n";

    for (std::int64_t trial = 0; trial < trials; ++trial) {
      const Graph g = random_instance(
          rng, static_cast<NodeId>(opt.get_int("max-n", 96)), ratio, opt.has("negative"));
      bool have_ref = false;
      Rational reference;
      bool first = true;
      for (const auto& name : solvers) {
        const auto solver = SolverRegistry::instance().create(name);
        const CycleResult r = ratio ? minimum_cycle_ratio(g, *solver, solve_options)
                                    : minimum_cycle_mean(g, *solver, solve_options);
        if (first) {
          first = false;
          have_ref = r.has_cycle;
          if (r.has_cycle) reference = r.value;
        } else if (r.has_cycle != have_ref || (r.has_cycle && r.value != reference)) {
          std::cerr << "\nMISMATCH at trial " << trial << ": " << solvers.front() << "="
                    << (have_ref ? reference.to_string() : "acyclic") << " vs " << name
                    << "=" << (r.has_cycle ? r.value.to_string() : "acyclic")
                    << "\ninstance:\n";
          write_dimacs(std::cerr, g, "mcr_fuzz failing instance");
          return 1;
        }
        // Certify every solver's own witness, not just the value: the
        // cycle must be well-formed, achieve r.value exactly, and
        // r.value must be optimal.
        if (r.has_cycle) {
          const auto cert = verify_result(g, r, kind);
          if (!cert.ok) {
            std::cerr << "\nCERTIFICATE FAILURE at trial " << trial << " (" << name
                      << "): " << cert.message << "\ninstance:\n";
            write_dimacs(std::cerr, g, "mcr_fuzz failing instance");
            return 1;
          }
        }
      }
      if (verbose || (trial + 1) % 50 == 0) {
        std::cout << "  trial " << (trial + 1) << "/" << trials << " ok\n";
      }
    }
    std::cout << "all " << trials << " trials agree and certify\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mcr_fuzz: " << e.what() << "\n";
    return 1;
  }
}
