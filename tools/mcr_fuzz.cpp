// mcr_fuzz — randomized differential testing of the whole registry.
//
//   mcr_fuzz [--trials 200] [--seed 1] [--max-n 96] [--ratio]
//            [--negative] [--verbose] [--threads N]
//            [--trace-out FILE]
//
// --threads N routes every solve through the parallel SCC driver with N
// workers (0 = hardware), so the fuzzer also cross-checks the
// determinism of the parallel merge.
//
// Each trial draws a random instance (SPRAND / circuit / structured,
// random shape parameters), runs every registered solver of the problem
// kind, and checks that (a) all values agree exactly and (b) EVERY
// solver's result passes the exact optimality certificate — a solver
// returning the right value with a bogus witness cycle is caught. Any
// mismatch prints the instance in DIMACS form for replay with mcr_solve,
// the PRNG seed and an mcr_gen command line that regenerates the exact
// instance, records a Chrome/Perfetto trace of the failing solver's run
// (--trace-out, default mcr_fuzz.fail.trace.json), and exits nonzero.
// This is the long-running companion to the bounded cross-validation
// tests in tests/.
#include <fstream>
#include <iostream>
#include <string>

#include "cli.h"
#include "core/driver.h"
#include "core/registry.h"
#include "core/verify.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "obs/build_info.h"
#include "graph/io.h"
#include "obs/trace_recorder.h"
#include "support/prng.h"

namespace {

using namespace mcr;

struct Instance {
  Graph graph;
  /// mcr_gen command line that regenerates graph bit-for-bit; every
  /// shape parameter below is drawn so it round-trips through mcr_gen's
  /// integer flags exactly.
  std::string repro;
};

Instance random_instance(Prng& rng, NodeId max_n, bool ratio, bool negative) {
  const int family = static_cast<int>(rng.uniform_int(0, 3));
  const NodeId n = static_cast<NodeId>(rng.uniform_int(4, max_n));
  switch (family) {
    case 0:
    case 1: {  // SPRAND dominates, as in the paper
      gen::SprandConfig cfg;
      cfg.n = n;
      cfg.m = n + static_cast<ArcId>(rng.uniform_int(0, 3 * n));
      cfg.min_weight = negative && rng.bernoulli(0.5) ? -10000 : 1;
      cfg.max_weight = 10000;
      if (ratio) {
        cfg.min_transit = 1;
        cfg.max_transit = rng.uniform_int(1, 8);
      }
      cfg.seed = rng.fork_seed();
      std::string repro = "mcr_gen sprand --n " + std::to_string(cfg.n) + " --m " +
                          std::to_string(cfg.m) + " --wmin " +
                          std::to_string(cfg.min_weight) + " --wmax " +
                          std::to_string(cfg.max_weight);
      if (ratio) {
        repro += " --tmin " + std::to_string(cfg.min_transit) + " --tmax " +
                 std::to_string(cfg.max_transit);
      }
      repro += " --seed " + std::to_string(cfg.seed);
      return {gen::sprand(cfg), std::move(repro)};
    }
    case 2: {
      gen::CircuitConfig cfg;
      cfg.registers = n;
      cfg.module_size = static_cast<NodeId>(rng.uniform_int(4, 16));
      // Drawn in whole percent so mcr_gen's integer --fanout flag
      // reproduces the exact double.
      const std::int64_t fanout_pct = rng.uniform_int(120, 200);
      cfg.avg_fanout = static_cast<double>(fanout_pct) / 100.0;
      cfg.seed = rng.fork_seed();
      return {gen::circuit(cfg),
              "mcr_gen circuit --n " + std::to_string(cfg.registers) + " --module " +
                  std::to_string(cfg.module_size) + " --fanout " +
                  std::to_string(fanout_pct) + " --seed " + std::to_string(cfg.seed)};
    }
    default: {
      const NodeId rows = static_cast<NodeId>(rng.uniform_int(2, 8));
      const NodeId cols = static_cast<NodeId>(rng.uniform_int(2, 8));
      const std::uint64_t seed = rng.fork_seed();
      return {gen::torus(rows, cols, 1, 1000, seed),
              "mcr_gen torus --rows " + std::to_string(rows) + " --cols " +
                  std::to_string(cols) + " --wmin 1 --wmax 1000 --seed " +
                  std::to_string(seed)};
    }
  }
}

// On a failure, dump everything needed for a one-copy-paste replay:
// the instance in DIMACS form, the master seed, the exact mcr_gen
// command that regenerates the instance, and a Chrome trace of the
// failing solver's run.
void dump_failure(const Graph& g, const Instance& inst, std::uint64_t master_seed,
                  const std::string& solver_name, bool ratio,
                  const SolveOptions& solve_options, const std::string& trace_out) {
  write_dimacs(std::cerr, g, "mcr_fuzz failing instance");
  std::cerr << "repro: master seed " << master_seed << "; regenerate with:\n"
            << "  " << inst.repro << " --out fail.dimacs\n"
            << "  mcr_solve fail.dimacs --algo " << solver_name
            << (ratio ? " --ratio" : "") << " --verify --counters\n";
  obs::TraceRecorder recorder;
  SolveOptions traced = solve_options;
  traced.trace = &recorder;
  const auto solver = SolverRegistry::instance().create(solver_name);
  (void)(ratio ? minimum_cycle_ratio(g, *solver, traced)
               : minimum_cycle_mean(g, *solver, traced));
  std::ofstream out(trace_out);
  if (out) {
    recorder.write_chrome_trace(out);
    std::cerr << "trace: wrote " << recorder.events().size() << " events to "
              << trace_out << " (open in ui.perfetto.dev)\n";
  } else {
    std::cerr << "trace: cannot write " << trace_out << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  try {
    const cli::Options opt = cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << obs::version_string("mcr_fuzz");
      return 0;
    }
    const std::int64_t trials = opt.get_int("trials", 200);
    const bool ratio = opt.has("ratio");
    const bool verbose = opt.has("verbose");
    const SolveOptions solve_options{
        .num_threads = static_cast<int>(opt.get_int_in("threads", 1, 0, 4096))};
    const auto master_seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    const std::string trace_out = opt.get("trace-out", "mcr_fuzz.fail.trace.json");
    Prng rng(master_seed);
    const auto kind = ratio ? ProblemKind::kCycleRatio : ProblemKind::kCycleMean;

    std::vector<std::string> solvers;
    for (const auto& name : SolverRegistry::instance().names(kind)) {
      if (name.rfind("brute_force", 0) == 0) continue;
      if (name == "ho_ratio") continue;  // Theta(Tn) memory; covered in tests
      solvers.push_back(name);
    }
    std::cout << "fuzzing " << solvers.size() << " solvers, " << trials << " trials ("
              << (ratio ? "ratio" : "mean") << "), seed " << master_seed << "\n";

    for (std::int64_t trial = 0; trial < trials; ++trial) {
      const Instance inst = random_instance(
          rng, static_cast<NodeId>(opt.get_int("max-n", 96)), ratio, opt.has("negative"));
      const Graph& g = inst.graph;
      bool have_ref = false;
      Rational reference;
      bool first = true;
      for (const auto& name : solvers) {
        const auto solver = SolverRegistry::instance().create(name);
        const CycleResult r = ratio ? minimum_cycle_ratio(g, *solver, solve_options)
                                    : minimum_cycle_mean(g, *solver, solve_options);
        if (first) {
          first = false;
          have_ref = r.has_cycle;
          if (r.has_cycle) reference = r.value;
        } else if (r.has_cycle != have_ref || (r.has_cycle && r.value != reference)) {
          std::cerr << "\nMISMATCH at trial " << trial << ": " << solvers.front() << "="
                    << (have_ref ? reference.to_string() : "acyclic") << " vs " << name
                    << "=" << (r.has_cycle ? r.value.to_string() : "acyclic")
                    << "\ninstance:\n";
          dump_failure(g, inst, master_seed, name, ratio, solve_options, trace_out);
          return 1;
        }
        // Certify every solver's own witness, not just the value: the
        // cycle must be well-formed, achieve r.value exactly, and
        // r.value must be optimal.
        if (r.has_cycle) {
          const auto cert = verify_result(g, r, kind);
          if (!cert.ok) {
            std::cerr << "\nCERTIFICATE FAILURE at trial " << trial << " (" << name
                      << "): " << cert.message << "\ninstance:\n";
            dump_failure(g, inst, master_seed, name, ratio, solve_options, trace_out);
            return 1;
          }
        }
      }
      if (verbose || (trial + 1) % 50 == 0) {
        std::cout << "  trial " << (trial + 1) << "/" << trials << " ok\n";
      }
    }
    std::cout << "all " << trials << " trials agree and certify\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mcr_fuzz: " << e.what() << "\n";
    return 1;
  }
}
