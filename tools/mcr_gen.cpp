// mcr_gen — generate benchmark instances in the extended DIMACS format.
//
//   mcr_gen sprand  --n 512 --m 1024 [--wmin 1] [--wmax 10000]
//                   [--tmin 1] [--tmax 1] [--seed 1] [--out FILE]
//   mcr_gen circuit --n 512 [--module 32] [--fanout 160]  # fanout in %
//                   [--seed 1] [--out FILE]
//   mcr_gen ring    --n 64 [--wmin 1] [--wmax 100] [--seed 1] [--out FILE]
//   mcr_gen torus   --rows 8 --cols 8 [--wmin 1] [--wmax 100] [--seed 1]
//
// Without --out the graph is written to stdout.
#include <fstream>
#include <iostream>

#include "cli.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/io.h"
#include "obs/build_info.h"

namespace {

using namespace mcr;

Graph generate(const std::string& family, const cli::Options& opt) {
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  if (family == "sprand") {
    gen::SprandConfig cfg;
    cfg.n = static_cast<NodeId>(opt.get_int("n", 512));
    cfg.m = static_cast<ArcId>(opt.get_int("m", 2 * cfg.n));
    cfg.min_weight = opt.get_int("wmin", 1);
    cfg.max_weight = opt.get_int("wmax", 10000);
    cfg.min_transit = opt.get_int("tmin", 1);
    cfg.max_transit = opt.get_int("tmax", 1);
    cfg.seed = seed;
    return gen::sprand(cfg);
  }
  if (family == "circuit") {
    gen::CircuitConfig cfg;
    cfg.registers = static_cast<NodeId>(opt.get_int("n", 512));
    cfg.module_size = static_cast<NodeId>(opt.get_int("module", 32));
    cfg.avg_fanout = static_cast<double>(opt.get_int("fanout", 150)) / 100.0;
    cfg.seed = seed;
    return gen::circuit(cfg);
  }
  if (family == "ring") {
    return gen::random_ring(static_cast<NodeId>(opt.get_int("n", 64)),
                            opt.get_int("wmin", 1), opt.get_int("wmax", 100), seed);
  }
  if (family == "torus") {
    return gen::torus(static_cast<NodeId>(opt.get_int("rows", 8)),
                      static_cast<NodeId>(opt.get_int("cols", 8)),
                      opt.get_int("wmin", 1), opt.get_int("wmax", 100), seed);
  }
  throw std::invalid_argument("unknown family '" + family +
                              "' (expected sprand | circuit | ring | torus)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  try {
    const cli::Options opt = cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << obs::version_string("mcr_gen");
      return 0;
    }
    if (opt.positional.size() != 1) {
      std::cerr << "usage: mcr_gen <sprand|circuit|ring|torus> [options] [--out FILE]\n";
      return 2;
    }
    const Graph g = generate(opt.positional[0], opt);
    const std::string comment = "mcr_gen " + opt.positional[0] + " n=" +
                                std::to_string(g.num_nodes()) + " m=" +
                                std::to_string(g.num_arcs());
    if (opt.has("out")) {
      save_dimacs(opt.get("out"), g, comment);
      std::cerr << "wrote " << opt.get("out") << " (" << g.num_nodes() << " nodes, "
                << g.num_arcs() << " arcs)\n";
    } else {
      write_dimacs(std::cout, g, comment);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mcr_gen: " << e.what() << "\n";
    return 1;
  }
}
