// mcr_load — load generator / replay harness for the mcr solve service.
//
//   mcr_load --socket PATH | --port N | --target SPEC [--target SPEC ...]
//            [--rps R | --ramp R1:S1,R2:S2,...]   open-loop offered load
//            [--concurrency K]                    closed-loop workers
//            [--connections N] [--duration S] [--requests N]
//            [--mix solve=90,stats=5,ping=5] [--cold-pct P]
//            [--reload-paths A.mcrpack,B.mcrpack] [--strict]
//            [--graph-n N] [--seed N] [--output PATH] [--version]
//
// Two load models:
//
//  - Open loop (--rps or --ramp): request *arrival times* are drawn
//    from a Poisson process at the offered rate, independent of how
//    fast the server answers. Every worker pulls the next arrival from
//    one shared schedule, sleeps until it, then issues the request —
//    and latency is measured from the *intended* send time, so a
//    stalled server shows up as growing latency instead of silently
//    throttling the measurement (no coordinated omission; the wrk2
//    correction).
//  - Closed loop (--concurrency K, the default): K workers issue
//    requests back-to-back. Measures capacity, not offered-load
//    behaviour; latency is per-round-trip.
//
// Workload shape:
//
//   --mix solve=90,stats=5,ping=5   relative weights per verb
//                    (solve | ping | stats | health | solvers | reload;
//                    reload defaults to weight 0 — give it weight to
//                    exercise dataset hot-swap under load)
//   --reload-paths A,B   RELOAD rotates through these pack paths
//                    round-robin; without it RELOAD is sent bare and
//                    re-attaches the server's current dataset path
//   --cold-pct P     percent of SOLVEs forced cold: each cold request
//                    carries a never-repeated generator seed, so its
//                    fingerprint misses the result cache and the solve
//                    runs for real. Warm SOLVEs rotate a small pool of
//                    fixed seeds (first hit per seed is cold, the rest
//                    replay from cache).
//   --ramp           phases of RPS:SECONDS stepping the offered rate,
//                    e.g. 200:10,500:10,1000:10 for a three-step ramp
//   --target SPEC    endpoint to drive: unix:PATH, HOST:PORT, or PORT.
//                    Repeatable — worker i connects to target i mod N,
//                    so one harness can drive several routers (or a
//                    worker fleet directly, as the control experiment
//                    against the routed path). --socket/--port are
//                    shorthand for a single target.
//
// The end-of-run report prints client-side p50/p95/p99/p99.9 over
// exact latency samples, throughput, a per-code error table, and cache
// hit accounting. --output PATH writes the same as a schema-versioned
// JSON artifact (benchkit conventions: schema_version + build
// provenance + stable key order).
//
// Exit status: 0 = run completed with zero transport errors; 1 = at
// least one transport error (or a fatal setup failure); 2 = usage.
// --strict widens the failure condition: any *service* error (a non-ok
// protocol response) also exits 1, so CI can assert a clean run.
// Retryable error codes (BUSY, UPSTREAM_UNAVAILABLE, ...) on
// idempotent verbs are retried up to twice before counting as errors —
// the client half of the errors.h retry contract — and the retry count
// is reported so flakiness stays visible even when absorbed.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.h"
#include "obs/build_info.h"
#include "support/prng.h"
#include "svc/client.h"
#include "svc/errors.h"
#include "svc/protocol.h"
#include "svc/router.h"

namespace {

using mcr::Prng;
using Clock = std::chrono::steady_clock;

struct Phase {
  double rps = 0.0;
  double seconds = 0.0;
};

/// One Poisson arrival schedule shared by every open-loop worker: each
/// next() hands out the next intended send time (seconds from run
/// start), stepping through the ramp phases. Serialized by a mutex —
/// the schedule is consulted once per request, far off the hot path.
class ArrivalSchedule {
 public:
  ArrivalSchedule(std::vector<Phase> phases, std::uint64_t seed)
      : phases_(std::move(phases)), prng_(seed) {}

  std::optional<double> next() {
    std::lock_guard lock(mutex_);
    for (;;) {
      if (phase_ >= phases_.size()) return std::nullopt;
      const Phase& p = phases_[phase_];
      const double end = phase_end();
      if (p.rps <= 0.0) {  // idle phase: nothing arrives, skip to its end
        cursor_ = end;
        begin_ = end;
        ++phase_;
        continue;
      }
      const double gap = -std::log(1.0 - prng_.uniform_real()) / p.rps;
      const double t = cursor_ + gap;
      if (t >= end) {
        cursor_ = end;
        begin_ = end;
        ++phase_;
        continue;
      }
      cursor_ = t;
      return t;
    }
  }

 private:
  [[nodiscard]] double phase_end() const {
    return begin_ + phases_[phase_].seconds;
  }

  std::mutex mutex_;
  std::vector<Phase> phases_;
  Prng prng_;
  std::size_t phase_ = 0;
  double begin_ = 0.0;  // start of the current phase
  double cursor_ = 0.0;
};

struct MixEntry {
  std::string verb;  // solve | ping | stats | health | solvers | reload
  double weight = 0.0;
};

double parse_number(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(what);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(what + " '" + text + "' is not a number");
  }
}

std::vector<MixEntry> parse_mix(const std::string& spec) {
  std::vector<MixEntry> mix;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("--mix entry '" + item +
                                  "' is not verb=weight");
    }
    MixEntry e;
    e.verb = item.substr(0, eq);
    e.weight = parse_number(item.substr(eq + 1), "--mix weight");
    if (e.verb != "solve" && e.verb != "ping" && e.verb != "stats" &&
        e.verb != "health" && e.verb != "solvers" && e.verb != "reload") {
      throw std::invalid_argument(
          "--mix verb '" + e.verb +
          "' unknown (expected solve | ping | stats | health | solvers | "
          "reload)");
    }
    if (e.weight < 0.0) {
      throw std::invalid_argument("--mix weight for '" + e.verb +
                                  "' is negative");
    }
    mix.push_back(std::move(e));
  }
  double total = 0.0;
  for (const MixEntry& e : mix) total += e.weight;
  if (mix.empty() || total <= 0.0) {
    throw std::invalid_argument("--mix has no positive weights");
  }
  return mix;
}

std::vector<Phase> parse_ramp(const std::string& spec) {
  std::vector<Phase> phases;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("--ramp entry '" + item +
                                  "' is not RPS:SECONDS");
    }
    Phase p;
    p.rps = parse_number(item.substr(0, colon), "--ramp rps");
    p.seconds = parse_number(item.substr(colon + 1), "--ramp seconds");
    if (p.rps < 0.0 || p.seconds <= 0.0) {
      throw std::invalid_argument("--ramp entry '" + item +
                                  "' needs rps >= 0 and seconds > 0");
    }
    phases.push_back(p);
  }
  if (phases.empty()) throw std::invalid_argument("--ramp is empty");
  return phases;
}

/// What one worker accumulates; merged after the joins, so no sharing.
struct WorkerStats {
  std::vector<double> latencies_ms;  // ok responses only
  std::map<std::string, std::uint64_t> errors;  // protocol code -> count
  std::map<std::string, std::uint64_t> verbs;   // issued, by verb
  std::uint64_t ok = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t retries = 0;  // retryable-code retries that were issued
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

struct LoadConfig {
  /// Endpoints, round-robin by worker index (worker i -> i mod N).
  std::vector<mcr::svc::BackendAddress> targets;
  bool open_loop = false;
  std::vector<Phase> phases;  // open loop
  std::size_t connections = 4;
  double duration_s = 10.0;       // closed loop bound
  std::uint64_t request_cap = 0;  // 0 = unbounded
  std::vector<MixEntry> mix;
  double cold_pct = 0.0;
  std::vector<std::string> reload_paths;  // RELOAD rotation; empty = bare
  bool strict = false;  // service errors also fail the run
  std::int64_t graph_n = 128;
  std::uint64_t seed = 1;
};

mcr::svc::Client connect(const LoadConfig& cfg, std::size_t worker_index) {
  const mcr::svc::BackendAddress& t = cfg.targets[worker_index % cfg.targets.size()];
  return t.kind == mcr::svc::BackendAddress::Kind::kUnix
             ? mcr::svc::Client::connect_unix(t.path)
             : mcr::svc::Client::connect_tcp(t.host, t.port);
}

/// Cold seeds must never repeat across the whole run (any repeat would
/// silently warm the cache), so they come from one process-wide counter
/// well away from the warm pool.
std::atomic<std::uint64_t> g_cold_seed{1u << 20};

/// RELOAD rotates through --reload-paths process-wide, not per worker,
/// so a two-path A,B rotation really alternates generations even when
/// many workers draw the reload verb.
std::atomic<std::uint64_t> g_reload_rr{0};

constexpr std::uint64_t kWarmSeeds = 8;  // warm SOLVE generator pool

std::string solve_payload(std::int64_t graph_n, std::uint64_t seed) {
  return "{\"verb\":\"SOLVE\",\"objective\":\"min_mean\",\"generator\":"
         "{\"family\":\"sprand\",\"n\":" +
         std::to_string(graph_n) + ",\"m\":" + std::to_string(2 * graph_n) +
         ",\"seed\":" + std::to_string(seed) + "}}";
}

/// One request round trip: pick a verb by mix weight, issue it, record
/// the outcome. `intended` is the latency epoch — the Poisson arrival
/// time for open loop, the send time for closed loop.
void issue_one(mcr::svc::Client& client, const LoadConfig& cfg, Prng& prng,
               Clock::time_point intended, WorkerStats& stats) {
  double total = 0.0;
  for (const MixEntry& e : cfg.mix) total += e.weight;
  double pick = prng.uniform_real() * total;
  std::string verb = cfg.mix.back().verb;
  for (const MixEntry& e : cfg.mix) {
    pick -= e.weight;
    if (pick < 0.0) {
      verb = e.verb;
      break;
    }
  }
  std::string payload;
  if (verb == "solve") {
    const bool cold = prng.uniform_real() * 100.0 < cfg.cold_pct;
    const std::uint64_t seed =
        cold ? g_cold_seed.fetch_add(1)
             : 1 + static_cast<std::uint64_t>(
                       prng.uniform_int(0, kWarmSeeds - 1));
    payload = solve_payload(cfg.graph_n, seed);
  } else if (verb == "ping") {
    payload = R"({"verb":"PING"})";
  } else if (verb == "stats") {
    payload = R"({"verb":"STATS"})";
  } else if (verb == "health") {
    payload = R"({"verb":"HEALTH"})";
  } else if (verb == "reload") {
    if (cfg.reload_paths.empty()) {
      payload = R"({"verb":"RELOAD"})";
    } else {
      const std::uint64_t i = g_reload_rr.fetch_add(1);
      payload = "{\"verb\":\"RELOAD\",\"path\":\"" +
                mcr::svc::json_escape(
                    cfg.reload_paths[i % cfg.reload_paths.size()]) +
                "\"}";
    }
  } else {
    payload = R"({"verb":"SOLVERS"})";
  }
  ++stats.verbs[verb];
  // Every verb here except RELOAD is idempotent (errors.h: "Retrying
  // SOLVE is always safe: results are cached and single-flighted by
  // fingerprint"), so a response carrying a *retryable* error code
  // (BUSY, UPSTREAM_UNAVAILABLE, ...) is re-sent a bounded number of
  // times before it counts as an error. That is the documented client
  // contract — a worker SIGKILLed mid-response behind a router
  // surfaces as one retryable UPSTREAM_UNAVAILABLE, not a failed run.
  const bool idempotent = verb != "reload";
  const int max_attempts = idempotent ? 3 : 1;
  for (int attempt = 1;; ++attempt) {
    try {
      const mcr::json::Value resp = client.request(payload);
      if (resp.string_or("status", "") == "ok") {
        ++stats.ok;
        stats.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - intended)
                .count());
        if (resp.has("cached")) {
          if (resp.at("cached").as_bool()) {
            ++stats.cache_hits;
          } else {
            ++stats.cache_misses;
          }
        }
        return;
      }
      const std::string code = resp.string_or("code", "UNKNOWN");
      if (attempt < max_attempts &&
          mcr::svc::ServiceError::is_retryable_code(code)) {
        ++stats.retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(10 * attempt));
        continue;
      }
      ++stats.errors[code];
      return;
    } catch (const mcr::svc::TransportError&) {
      ++stats.transport_errors;
      try {
        client.reconnect();
      } catch (const mcr::svc::TransportError&) {
        // Endpoint gone (server died?). Back off so a dead server costs
        // ~20 failed sends per worker-second, not a busy loop.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      return;
    }
  }
}

void open_loop_worker(const LoadConfig& cfg, std::size_t worker_index,
                      ArrivalSchedule& schedule, Clock::time_point start,
                      std::uint64_t worker_seed,
                      std::atomic<std::uint64_t>& issued, WorkerStats& stats) {
  Prng prng(worker_seed);
  try {
    mcr::svc::Client client = connect(cfg, worker_index);
    while (const std::optional<double> t = schedule.next()) {
      if (cfg.request_cap != 0 && issued.fetch_add(1) >= cfg.request_cap) return;
      const Clock::time_point intended =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(*t));
      // Already past the arrival (backlog): send immediately — the
      // lateness stays inside the measured latency.
      std::this_thread::sleep_until(intended);
      issue_one(client, cfg, prng, intended, stats);
    }
  } catch (const mcr::svc::TransportError&) {
    ++stats.transport_errors;  // could not even connect
  }
}

void closed_loop_worker(const LoadConfig& cfg, std::size_t worker_index,
                        Clock::time_point deadline, std::uint64_t worker_seed,
                        std::atomic<std::uint64_t>& issued,
                        WorkerStats& stats) {
  Prng prng(worker_seed);
  try {
    mcr::svc::Client client = connect(cfg, worker_index);
    while (Clock::now() < deadline) {
      if (cfg.request_cap != 0 && issued.fetch_add(1) >= cfg.request_cap) return;
      issue_one(client, cfg, prng, Clock::now(), stats);
    }
  } catch (const mcr::svc::TransportError&) {
    ++stats.transport_errors;
  }
}

/// Exact sample percentile (nearest-rank with interpolation-free
/// semantics): the smallest sample with rank >= q*n. `sorted` ascending.
std::optional<double> sample_percentile(const std::vector<double>& sorted,
                                        double q) {
  if (sorted.empty()) return std::nullopt;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

std::string fmt_opt_ms(const std::optional<double>& v) {
  if (!v.has_value()) return "-";
  std::ostringstream os;
  os.precision(4);
  os << *v;
  return os.str();
}

std::string json_opt(const std::optional<double>& v) {
  if (!v.has_value()) return "null";
  std::ostringstream os;
  os << *v;
  return os.str();
}

std::string json_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  try {
    const cli::Options opt = cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << obs::version_string("mcr_load");
      return 0;
    }
    if (!opt.positional.empty() ||
        (!opt.has("socket") && !opt.has("port") && !opt.has("target"))) {
      std::cerr
          << "usage: mcr_load --socket PATH | --port N | --target SPEC ...\n"
             "                [--rps R | --ramp R1:S1,R2:S2,...] open loop\n"
             "                [--concurrency K]                  closed loop\n"
             "                [--connections N] [--duration S] [--requests N]\n"
             "                [--mix solve=90,stats=5,ping=5] [--cold-pct P]\n"
             "                [--reload-paths A.mcrpack,B.mcrpack] [--strict]\n"
             "                [--graph-n N] [--seed N] [--output PATH]\n"
             "                [--version]\n"
             "       SPEC is unix:PATH, HOST:PORT, or PORT (repeatable;\n"
             "       worker i drives target i mod N)\n";
      return 2;
    }

    LoadConfig cfg;
    for (const std::string& spec : opt.get_all("target")) {
      cfg.targets.push_back(svc::parse_backend_address(spec));
    }
    if (opt.has("socket")) {
      cfg.targets.push_back(svc::parse_backend_address("unix:" + opt.get("socket")));
    }
    if (opt.has("port")) {
      cfg.targets.push_back(svc::parse_backend_address(
          std::to_string(opt.get_int_in("port", 0, 1, 65535))));
    }
    cfg.open_loop = opt.has("rps") || opt.has("ramp");
    if (cfg.open_loop && opt.has("concurrency")) {
      std::cerr << "mcr_load: --concurrency is closed-loop; it cannot be "
                   "combined with --rps/--ramp\n";
      return 2;
    }
    cfg.duration_s =
        opt.get_double("duration", opt.has("requests") ? 86400.0 : 10.0);
    if (cfg.duration_s <= 0.0) {
      std::cerr << "mcr_load: --duration must be positive\n";
      return 2;
    }
    cfg.request_cap = static_cast<std::uint64_t>(
        opt.get_int_in("requests", 0, 0, std::int64_t{1} << 40));
    if (cfg.open_loop) {
      cfg.phases = opt.has("ramp")
                       ? parse_ramp(opt.get("ramp"))
                       : std::vector<Phase>{
                             {opt.get_double("rps", 100.0), cfg.duration_s}};
      cfg.connections =
          static_cast<std::size_t>(opt.get_int_in("connections", 4, 1, 4096));
    } else {
      cfg.connections =
          static_cast<std::size_t>(opt.get_int_in("concurrency", 4, 1, 4096));
    }
    cfg.mix = parse_mix(opt.get("mix", "solve=90,stats=5,ping=5"));
    cfg.cold_pct = opt.get_double("cold-pct", 0.0);
    if (cfg.cold_pct < 0.0 || cfg.cold_pct > 100.0) {
      std::cerr << "mcr_load: --cold-pct must be in [0,100]\n";
      return 2;
    }
    cfg.graph_n = opt.get_int_in("graph-n", 128, 2, 1 << 20);
    cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    cfg.strict = opt.has("strict");
    {
      std::stringstream ss(opt.get("reload-paths"));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) cfg.reload_paths.push_back(item);
      }
    }

    // Probe every endpoint once before spawning workers so a wrong path
    // fails with one clear message instead of N.
    for (std::size_t i = 0; i < cfg.targets.size(); ++i) {
      svc::Client probe = connect(cfg, i);
      if (!probe.ping()) {
        std::cerr << "mcr_load: endpoint " << cfg.targets[i].name
                  << " did not answer PING\n";
        return 1;
      }
    }

    Prng seeder(cfg.seed);
    ArrivalSchedule schedule(cfg.phases, seeder.fork_seed());
    std::atomic<std::uint64_t> issued{0};
    std::vector<WorkerStats> per_worker(cfg.connections);
    std::vector<std::thread> workers;
    workers.reserve(cfg.connections);
    const Clock::time_point start = Clock::now();
    const Clock::time_point deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(cfg.duration_s));
    for (std::size_t i = 0; i < cfg.connections; ++i) {
      const std::uint64_t ws = seeder.fork_seed();
      WorkerStats& stats = per_worker[i];
      if (cfg.open_loop) {
        workers.emplace_back([&, ws, i] {
          open_loop_worker(cfg, i, schedule, start, ws, issued, stats);
        });
      } else {
        workers.emplace_back([&, ws, i] {
          closed_loop_worker(cfg, i, deadline, ws, issued, stats);
        });
      }
    }
    for (std::thread& t : workers) t.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    // Merge.
    WorkerStats total;
    for (WorkerStats& w : per_worker) {
      total.latencies_ms.insert(total.latencies_ms.end(),
                                w.latencies_ms.begin(), w.latencies_ms.end());
      for (const auto& [code, n] : w.errors) total.errors[code] += n;
      for (const auto& [verb, n] : w.verbs) total.verbs[verb] += n;
      total.ok += w.ok;
      total.transport_errors += w.transport_errors;
      total.retries += w.retries;
      total.cache_hits += w.cache_hits;
      total.cache_misses += w.cache_misses;
    }
    std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
    const auto p50 = sample_percentile(total.latencies_ms, 0.50);
    const auto p95 = sample_percentile(total.latencies_ms, 0.95);
    const auto p99 = sample_percentile(total.latencies_ms, 0.99);
    const auto p999 = sample_percentile(total.latencies_ms, 0.999);
    double mean = 0.0;
    for (const double x : total.latencies_ms) mean += x;
    if (!total.latencies_ms.empty()) {
      mean /= static_cast<double>(total.latencies_ms.size());
    }
    std::uint64_t error_total = 0;
    for (const auto& [code, n] : total.errors) error_total += n;
    const double rps = wall_s > 0.0 ? static_cast<double>(total.ok) / wall_s : 0.0;

    std::cout << "mcr_load: " << (cfg.open_loop ? "open" : "closed")
              << "-loop, " << cfg.connections
              << (cfg.open_loop ? " connections" : " workers") << ", "
              << wall_s << " s wall\n";
    std::cout << "  completed " << total.ok << " ok, " << error_total
              << " service errors, " << total.transport_errors
              << " transport errors, " << total.retries << " retries ("
              << rps << " rps ok)\n";
    std::cout << "  latency ms: p50 " << fmt_opt_ms(p50) << "  p95 "
              << fmt_opt_ms(p95) << "  p99 " << fmt_opt_ms(p99) << "  p99.9 "
              << fmt_opt_ms(p999) << "  mean "
              << (total.latencies_ms.empty() ? std::string("-")
                                             : json_double(mean))
              << "  max "
              << (total.latencies_ms.empty()
                      ? std::string("-")
                      : json_double(total.latencies_ms.back()))
              << "\n";
    std::cout << "  verbs:";
    for (const auto& [verb, n] : total.verbs) {
      std::cout << " " << verb << "=" << n;
    }
    std::cout << "\n  cache: " << total.cache_hits << " hits, "
              << total.cache_misses << " misses\n";
    if (!total.errors.empty()) {
      std::cout << "  errors:";
      for (const auto& [code, n] : total.errors) {
        std::cout << " " << code << "=" << n;
      }
      std::cout << "\n";
    }

    if (opt.has("output")) {
      std::string out = "{\"schema_version\":1,\"tool\":\"mcr_load\"";
      out += ",\"mode\":\"";
      out += cfg.open_loop ? "open" : "closed";
      out += "\",\"config\":{\"connections\":" + std::to_string(cfg.connections);
      out += ",\"cold_pct\":" + json_double(cfg.cold_pct);
      out += ",\"graph_n\":" + std::to_string(cfg.graph_n);
      out += ",\"seed\":" + std::to_string(cfg.seed);
      out += ",\"phases\":[";
      for (std::size_t i = 0; i < cfg.phases.size(); ++i) {
        if (i != 0) out += ',';
        out += "{\"rps\":" + json_double(cfg.phases[i].rps) +
               ",\"seconds\":" + json_double(cfg.phases[i].seconds) + "}";
      }
      out += "],\"mix\":{";
      for (std::size_t i = 0; i < cfg.mix.size(); ++i) {
        if (i != 0) out += ',';
        out += "\"" + svc::json_escape(cfg.mix[i].verb) +
               "\":" + json_double(cfg.mix[i].weight);
      }
      out += "}},\"build\":" + obs::build_info_json();
      out += ",\"wall_seconds\":" + json_double(wall_s);
      out += ",\"completed\":" + std::to_string(total.ok);
      out += ",\"throughput_rps\":" + json_double(rps);
      out += ",\"latency_ms\":{\"count\":" +
             std::to_string(total.latencies_ms.size());
      out += ",\"mean\":" +
             (total.latencies_ms.empty() ? "null" : json_double(mean));
      out += ",\"max\":" + (total.latencies_ms.empty()
                                ? "null"
                                : json_double(total.latencies_ms.back()));
      out += ",\"p50\":" + json_opt(p50);
      out += ",\"p95\":" + json_opt(p95);
      out += ",\"p99\":" + json_opt(p99);
      out += ",\"p999\":" + json_opt(p999);
      out += "},\"verbs\":{";
      bool first = true;
      for (const auto& [verb, n] : total.verbs) {
        if (!first) out += ',';
        first = false;
        out += "\"" + svc::json_escape(verb) + "\":" + std::to_string(n);
      }
      out += "},\"errors\":{";
      first = true;
      for (const auto& [code, n] : total.errors) {
        if (!first) out += ',';
        first = false;
        out += "\"" + svc::json_escape(code) + "\":" + std::to_string(n);
      }
      out += "},\"transport_errors\":" + std::to_string(total.transport_errors);
      out += ",\"retries\":" + std::to_string(total.retries);
      out += ",\"cache\":{\"hits\":" + std::to_string(total.cache_hits);
      out += ",\"misses\":" + std::to_string(total.cache_misses) + "}}";
      std::ofstream f(opt.get("output"));
      if (!f) {
        std::cerr << "mcr_load: cannot write " << opt.get("output") << "\n";
        return 1;
      }
      f << out << "\n";
      std::cout << "  report: " << opt.get("output") << "\n";
    }
    if (total.transport_errors != 0) return 1;
    if (cfg.strict && error_total != 0) {
      std::cerr << "mcr_load: --strict and " << error_total
                << " service errors\n";
      return 1;
    }
    return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "mcr_load: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mcr_load: " << e.what() << "\n";
    return 1;
  }
}
