// mcr_pack — build, inspect, and verify .mcrpack graph containers.
//
//   mcr_pack build <input.dimacs> --out FILE.mcrpack
//   mcr_pack gen <sprand|circuit|ring|torus> [gen options] --out FILE.mcrpack
//   mcr_pack info FILE.mcrpack
//   mcr_pack verify FILE.mcrpack
//
// `build` packs an existing DIMACS file; `gen` packs a generated
// instance directly (same families and options as mcr_gen). `info`
// dumps the validated header and section table; `verify` just attaches
// (header + checksum + structural validation) and reports the result.
// See docs/STORAGE.md for the format.
//
// Exit codes: 0 = ok, 1 = error (including pack rejection), 2 = usage.
#include <iostream>

#include "cli.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/io.h"
#include "obs/build_info.h"
#include "store/format.h"
#include "store/pack_reader.h"
#include "store/pack_writer.h"

namespace {

using namespace mcr;

Graph generate(const std::string& family, const cli::Options& opt) {
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  if (family == "sprand") {
    gen::SprandConfig cfg;
    cfg.n = static_cast<NodeId>(opt.get_int("n", 512));
    cfg.m = static_cast<ArcId>(opt.get_int("m", 2 * cfg.n));
    cfg.min_weight = opt.get_int("wmin", 1);
    cfg.max_weight = opt.get_int("wmax", 10000);
    cfg.min_transit = opt.get_int("tmin", 1);
    cfg.max_transit = opt.get_int("tmax", 1);
    cfg.seed = seed;
    return gen::sprand(cfg);
  }
  if (family == "circuit") {
    gen::CircuitConfig cfg;
    cfg.registers = static_cast<NodeId>(opt.get_int("n", 512));
    cfg.module_size = static_cast<NodeId>(opt.get_int("module", 32));
    cfg.avg_fanout = static_cast<double>(opt.get_int("fanout", 150)) / 100.0;
    cfg.seed = seed;
    return gen::circuit(cfg);
  }
  if (family == "ring") {
    return gen::random_ring(static_cast<NodeId>(opt.get_int("n", 64)),
                            opt.get_int("wmin", 1), opt.get_int("wmax", 100), seed);
  }
  if (family == "torus") {
    return gen::torus(static_cast<NodeId>(opt.get_int("rows", 8)),
                      static_cast<NodeId>(opt.get_int("cols", 8)),
                      opt.get_int("wmin", 1), opt.get_int("wmax", 100), seed);
  }
  throw std::invalid_argument("unknown family '" + family +
                              "' (expected sprand | circuit | ring | torus)");
}

void report_write(const std::string& out_path, const store::PackWriteInfo& info) {
  std::cerr << "wrote " << out_path << " (" << info.file_bytes << " bytes, fingerprint "
            << info.fingerprint << ", " << info.num_components << " components, "
            << info.num_cyclic << " cyclic)\n";
  std::cout << info.fingerprint << "\n";
}

const char* section_name(store::SectionId id) {
  using store::SectionId;
  switch (id) {
    case SectionId::kArcSrc: return "arc_src";
    case SectionId::kArcDst: return "arc_dst";
    case SectionId::kArcWeight: return "arc_weight";
    case SectionId::kArcTransit: return "arc_transit";
    case SectionId::kOutFirst: return "out_first";
    case SectionId::kOutArcs: return "out_arcs";
    case SectionId::kInFirst: return "in_first";
    case SectionId::kInArcs: return "in_arcs";
    case SectionId::kSccComponent: return "scc_component";
    case SectionId::kSccCyclic: return "scc_cyclic";
    case SectionId::kComponentMeta: return "component_meta";
    case SectionId::kCount: break;
  }
  return "?";
}

int do_info(const std::string& path) {
  const store::PackReader reader = store::PackReader::open(path);
  const store::PackHeader& h = reader.header();
  std::cout << "pack:          " << path << "\n"
            << "format:        v" << h.format_version << " (" << h.file_bytes
            << " bytes)\n"
            << "fingerprint:   " << reader.fingerprint_hex() << "\n"
            << "graph:         " << h.num_nodes << " nodes, " << h.num_arcs << " arcs\n"
            << "weights:       [" << h.min_weight << ", " << h.max_weight
            << "], total transit " << h.total_transit << "\n"
            << "condensation:  " << h.num_components << " components, " << h.num_cyclic
            << " cyclic\n"
            << "sections:\n";
  for (std::size_t i = 0; i < store::kSectionCount; ++i) {
    const store::SectionEntry& e = h.sections[i];
    std::cout << "  " << section_name(static_cast<store::SectionId>(i)) << ": offset "
              << e.offset << ", " << e.bytes << " bytes\n";
  }
  std::int64_t tiled = 0;
  for (const store::ComponentMeta& cm : reader.component_meta()) {
    if (cm.tile_hint > 0) ++tiled;
  }
  std::cout << "tile hints:    " << tiled << " components large enough for tiling\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  const char* usage =
      "usage: mcr_pack build <input.dimacs> --out FILE.mcrpack\n"
      "       mcr_pack gen <sprand|circuit|ring|torus> [options] --out FILE.mcrpack\n"
      "       mcr_pack info FILE.mcrpack\n"
      "       mcr_pack verify FILE.mcrpack\n";
  try {
    const cli::Options opt = cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << obs::version_string("mcr_pack");
      return 0;
    }
    if (opt.positional.empty()) {
      std::cerr << usage;
      return 2;
    }
    const std::string& cmd = opt.positional[0];
    if (cmd == "build") {
      if (opt.positional.size() != 2 || !opt.has("out")) {
        std::cerr << usage;
        return 2;
      }
      const Graph g = load_dimacs(opt.positional[1]);
      report_write(opt.get("out"), store::write_pack(opt.get("out"), g));
      return 0;
    }
    if (cmd == "gen") {
      if (opt.positional.size() != 2 || !opt.has("out")) {
        std::cerr << usage;
        return 2;
      }
      const Graph g = generate(opt.positional[1], opt);
      report_write(opt.get("out"), store::write_pack(opt.get("out"), g));
      return 0;
    }
    if (cmd == "info") {
      if (opt.positional.size() != 2) {
        std::cerr << usage;
        return 2;
      }
      return do_info(opt.positional[1]);
    }
    if (cmd == "verify") {
      if (opt.positional.size() != 2) {
        std::cerr << usage;
        return 2;
      }
      const store::PackReader reader = store::PackReader::open(opt.positional[1]);
      std::cerr << "ok: " << opt.positional[1] << " (" << reader.file_bytes()
                << " bytes, fingerprint " << reader.fingerprint_hex() << ")\n";
      std::cout << reader.fingerprint_hex() << "\n";
      return 0;
    }
    std::cerr << usage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mcr_pack: " << e.what() << "\n";
    return 1;
  }
}
