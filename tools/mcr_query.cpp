// mcr_query — command-line client for the mcr solve service.
//
//   mcr_query --socket PATH|--tcp PORT <verb> [args]
//
//   verbs:
//     ping                          liveness check
//     load <file.dimacs>            load a graph, print its fingerprint
//     solve <file.dimacs|fp:HEX>    solve (loads the file first when
//                                   given a path) and print the result
//       [--algo NAME] [--ratio] [--max] [--deadline-ms N]
//       [--output json]             print the shared result schema
//                                   (identical bytes for identical
//                                   cached results; cache status goes
//                                   to stderr)
//     solvers                       list the server's registered solvers
//     stats [--prometheus]          server metrics (JSON, or Prometheus
//                                   text with --prometheus)
//     health                        liveness + queue depth + last-solve age
//     raw '<json>'                  send one raw request payload
//
//   --retry    retry transient failures (BUSY / DEADLINE_EXCEEDED /
//              SHUTTING_DOWN and transport errors) with exponential
//              backoff before giving up; safe, SOLVE is idempotent
//   --version  print build provenance and exit
//   --help     print the verb and exit-code reference
//
// Exit codes (scriptable: each transient failure mode is distinct):
//   0  ok
//   1  server-side error not listed below (e.g. BAD_REQUEST, INTERNAL)
//   2  usage error
//   3  transport failure (cannot connect / connection lost)
//   4  BUSY              server at admission capacity; retry later
//   5  DEADLINE_EXCEEDED the request's deadline elapsed
//   6  NOT_FOUND         fingerprint not resident (LOAD it again)
//   7  SHUTTING_DOWN     server is draining; retry against its successor
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli.h"
#include "obs/build_info.h"
#include "support/json.h"
#include "svc/client.h"
#include "svc/errors.h"

namespace {

using namespace mcr;

constexpr const char* kHelpText =
    R"(usage: mcr_query --socket PATH|--tcp PORT <verb> [args]

verbs:
  ping                        liveness check
  load <file.dimacs>          load a graph, print its fingerprint
  solve <file.dimacs|fp:HEX>  solve and print the result
    [--algo NAME] [--ratio] [--max] [--deadline-ms N] [--output json]
  solvers                     list the server's registered solvers
  stats [--prometheus]        server metrics
  health                      liveness + queue depth + last-solve age
  raw '<json>'                send one raw request payload

flags:
  --retry     retry transient failures (exponential backoff + jitter)
  --version   print build provenance and exit
  --help      this text

exit codes:
  0  ok
  1  other server-side error (BAD_REQUEST, INTERNAL, ...)
  2  usage error
  3  transport failure (cannot connect / connection lost)
  4  BUSY               server at admission capacity; retry later
  5  DEADLINE_EXCEEDED  the request's deadline elapsed
  6  NOT_FOUND          fingerprint not resident (LOAD it again)
  7  SHUTTING_DOWN      server is draining
)";

/// The scriptable exit-code contract: transient, retryable conditions
/// get their own codes so shell callers can branch without parsing
/// stderr (documented in --help and docs/ROBUSTNESS.md).
int exit_code_for(const std::string& code) {
  if (code == "BUSY") return 4;
  if (code == "DEADLINE_EXCEEDED") return 5;
  if (code == "NOT_FOUND") return 6;
  if (code == "SHUTTING_DOWN") return 7;
  return 1;
}

svc::Client connect(const cli::Options& opt) {
  if (opt.has("socket")) return svc::Client::connect_unix(opt.get("socket"));
  if (opt.has("tcp")) {
    return svc::Client::connect_tcp(
        static_cast<int>(opt.get_int_in("tcp", 0, 1, 65535)));
  }
  throw std::invalid_argument("no server address (--socket PATH or --tcp PORT)");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Prints a response's error (if any) and maps it to an exit code.
int finish(const json::Value& response) {
  if (response.string_or("status", "") == "ok") return 0;
  const std::string code = response.string_or("code", "ERROR");
  std::cerr << "mcr_query: " << code << ": "
            << response.string_or("message", "(no message)") << "\n";
  return exit_code_for(code);
}

int do_solve(svc::Client& client, const cli::Options& opt) {
  if (opt.positional.size() != 2) {
    throw std::invalid_argument("solve needs <file.dimacs|fp:HEX>");
  }
  const std::string& target = opt.positional[1];
  std::string fingerprint;
  if (target.rfind("fp:", 0) == 0) {
    fingerprint = target.substr(3);
  } else {
    fingerprint = client.load_dimacs_text(read_file(target));
  }
  const bool ratio = opt.has("ratio");
  const std::string objective = std::string(opt.has("max") ? "max" : "min") + "_" +
                                (ratio ? "ratio" : "mean");
  std::string payload = R"({"verb":"SOLVE","fingerprint":")" + fingerprint +
                        R"(","objective":")" + objective + "\"";
  if (opt.has("algo")) {
    payload += R"(,"algo":")" + svc::json_escape(opt.get("algo")) + "\"";
  }
  if (const double deadline = opt.get_double("deadline-ms", 0.0); deadline > 0.0) {
    payload += ",\"deadline_ms\":" + std::to_string(deadline);
  }
  payload += "}";

  std::string raw;
  if (opt.has("retry")) {
    // request_retry throws typed errors; main maps them to exit codes.
    // The parsed value is discarded here because the json printer below
    // wants the exact response bytes.
    (void)client.request_retry(payload);
    raw = client.request_raw(payload);  // cache hit: instant, byte-stable
  } else {
    raw = client.request_raw(payload);
  }
  const json::Value r = json::parse(raw);
  if (const int rc = finish(r); rc != 0) return rc;

  const json::Value& result = r.at("result");
  const bool cached = r.at("cached").as_bool();
  std::cerr << (cached ? "(cached)" : "(solved)") << "\n";
  if (opt.get("output") == "json") {
    // The response embeds the shared result schema as its final field;
    // print exactly those bytes so responses for the same cache key are
    // byte-identical regardless of which client asked first.
    const std::size_t pos = raw.find("\"result\":");
    if (pos == std::string::npos || raw.back() != '}') {
      std::cerr << "mcr_query: malformed response\n";
      return 3;
    }
    const std::size_t begin = pos + 9;
    std::cout << raw.substr(begin, raw.size() - 1 - begin) << "\n";
    return 0;
  }
  if (!result.at("has_cycle").as_bool()) {
    std::cout << "graph is acyclic (no cycle " << (ratio ? "ratio" : "mean")
              << ")\n";
    return 0;
  }
  std::cout << result.at("algorithm").as_string() << ": " << objective << " = "
            << static_cast<std::int64_t>(result.at("value_num").as_double()) << "/"
            << static_cast<std::int64_t>(result.at("value_den").as_double()) << " ("
            << result.at("value").as_double() << "), cycle length "
            << static_cast<std::int64_t>(result.at("cycle_length").as_double())
            << ", " << result.at("milliseconds").as_double() << " ms\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  cli::Options opt;
  try {
    opt = cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << obs::version_string("mcr_query");
      return 0;
    }
    if (opt.has("help")) {
      std::cout << kHelpText;
      return 0;
    }
    if (opt.positional.empty()) {
      std::cerr << "usage: mcr_query --socket PATH|--tcp PORT "
                   "<ping|load|solve|solvers|stats|health|raw> [args] "
                   "(--help for the exit-code table)\n";
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << "mcr_query: " << e.what() << "\n";
    return 2;
  }
  try {
    svc::Client client = connect(opt);
    if (opt.has("retry")) {
      client.set_retry_policy(svc::RetryPolicy{});
    }
    const std::string& verb = opt.positional[0];
    if (verb == "health") {
      const std::string raw = client.request_raw(R"({"verb":"HEALTH"})");
      const json::Value r = json::parse(raw);
      if (const int rc = finish(r); rc != 0) return rc;
      std::cout << raw << "\n";
      return 0;
    }
    if (verb == "ping") {
      if (!client.ping()) {
        std::cerr << "mcr_query: ping failed\n";
        return 1;
      }
      std::cout << "ok\n";
      return 0;
    }
    if (verb == "load") {
      if (opt.positional.size() != 2) {
        std::cerr << "mcr_query: load needs <file.dimacs>\n";
        return 2;
      }
      const json::Value r = client.request(
          R"({"verb":"LOAD","dimacs":")" +
          svc::json_escape(read_file(opt.positional[1])) + "\"}");
      if (const int rc = finish(r); rc != 0) return rc;
      std::cout << r.at("fingerprint").as_string() << "\n";
      return 0;
    }
    if (verb == "solve") return do_solve(client, opt);
    if (verb == "solvers") {
      const json::Value r = client.request(R"({"verb":"SOLVERS"})");
      if (const int rc = finish(r); rc != 0) return rc;
      for (const json::Value& s : r.at("solvers").as_array()) {
        std::cout << s.at("name").as_string() << "  ("
                  << s.at("kind").as_string() << ", "
                  << s.at("bound").as_string() << ")\n";
      }
      return 0;
    }
    if (verb == "stats") {
      const std::string raw = client.request_raw(R"({"verb":"STATS"})");
      const json::Value r = json::parse(raw);
      if (const int rc = finish(r); rc != 0) return rc;
      if (opt.has("prometheus")) {
        std::cout << r.at("prometheus").as_string();
      } else {
        std::cout << raw << "\n";
      }
      return 0;
    }
    if (verb == "raw") {
      if (opt.positional.size() != 2) {
        std::cerr << "mcr_query: raw needs one JSON payload argument\n";
        return 2;
      }
      std::cout << client.request_raw(opt.positional[1]) << "\n";
      return 0;
    }
    std::cerr << "mcr_query: unknown verb '" << verb << "'\n";
    return 2;
  } catch (const svc::ServiceError& e) {
    // Typed server error thrown by the retry path after its budget ran
    // out (or immediately for non-retryable codes).
    std::cerr << "mcr_query: " << e.what() << "\n";
    return exit_code_for(e.code());
  } catch (const std::invalid_argument& e) {
    std::cerr << "mcr_query: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mcr_query: " << e.what() << "\n";
    return 3;
  }
}
