// mcr_query — command-line client for the mcr solve service.
//
//   mcr_query --socket PATH|--tcp PORT <verb> [args]
//
//   verbs:
//     ping                          liveness check
//     load <file.dimacs>            load a graph, print its fingerprint
//     solve <file.dimacs|fp:HEX>    solve (loads the file first when
//                                   given a path) and print the result
//       [--algo NAME] [--ratio] [--max] [--deadline-ms N]
//       [--output json]             print the shared result schema
//                                   (identical bytes for identical
//                                   cached results; cache status goes
//                                   to stderr)
//     solvers                       list the server's registered solvers
//     stats [--prometheus] [--json] server metrics: per-verb latency
//                                   summary table (p50/p95/p99 from the
//                                   histogram buckets) by default, the
//                                   raw JSON with --json, Prometheus
//                                   text with --prometheus
//     top [--interval S] [--count N] refreshing live view: windowed
//                                   per-verb p50/p95/p99 + rps from
//                                   STATS {"window":true}, saturation
//                                   gauges, cache hit ratio per refresh
//                                   (N frames then exit; 0 = forever)
//     health                        liveness + queue depth + last-solve age
//     reload [--path FILE.mcrpack]  hot-swap the server's dataset (no
//                                   --path re-attaches the current one);
//                                   prints the new fingerprint/generation
//     trace [--trace-id H] [--verb V] [--min-ms N] [--limit N] [--out FILE]
//                                   fetch recent/pinned request traces
//                                   from the flight recorder as
//                                   Perfetto-loadable Chrome JSON
//                                   (stdout or --out FILE; summary on
//                                   stderr)
//     raw '<json>'                  send one raw request payload
//
//   solve also accepts --trace-id H to propagate a caller-chosen trace
//   id; every response's trace_id is echoed on stderr so the request's
//   trace can be fetched back with `trace --trace-id`.
//
//   --retry    retry transient failures (BUSY / DEADLINE_EXCEEDED /
//              SHUTTING_DOWN and transport errors) with exponential
//              backoff before giving up; safe, SOLVE is idempotent
//   --version  print build provenance and exit
//   --help     print the verb and exit-code reference
//
// Exit codes (scriptable: each transient failure mode is distinct):
//   0  ok
//   1  server-side error not listed below (e.g. BAD_REQUEST, INTERNAL)
//   2  usage error
//   3  transport failure (cannot connect / connection lost)
//   4  BUSY              server at admission capacity; retry later
//   5  DEADLINE_EXCEEDED the request's deadline elapsed
//   6  NOT_FOUND         fingerprint not resident (LOAD it again)
//   7  SHUTTING_DOWN     server is draining; retry against its successor
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.h"
#include "obs/build_info.h"
#include "obs/windowed.h"
#include "support/json.h"
#include "svc/client.h"
#include "svc/errors.h"

namespace {

using namespace mcr;

constexpr const char* kHelpText =
    R"(usage: mcr_query --socket PATH|--tcp PORT <verb> [args]

verbs:
  ping                        liveness check
  load <file.dimacs>          load a graph, print its fingerprint
  solve <file.dimacs|fp:HEX>  solve and print the result
    [--algo NAME] [--ratio] [--max] [--deadline-ms N] [--output json]
    [--trace-id H]
  solvers                     list the server's registered solvers
  stats [--prometheus|--json] server metrics (default: latency table)
  top [--interval S] [--count N]
                              refreshing live view (windowed percentiles,
                              rps, saturation gauges, cache hit ratio)
  health [--json]             liveness + queue depth + last-solve age
                              (human summary by default; exit 8 = degraded)
  reload [--path FILE]        hot-swap the server's dataset (.mcrpack)
  trace [--trace-id H] [--verb V] [--min-ms N] [--limit N] [--out FILE]
                              fetch request traces (Chrome JSON)
  raw '<json>'                send one raw request payload

flags:
  --retry     retry transient failures (exponential backoff + jitter)
  --version   print build provenance and exit
  --help      this text

exit codes:
  0  ok
  1  other server-side error (BAD_REQUEST, INTERNAL, ...)
  2  usage error
  3  transport failure (cannot connect / connection lost)
  4  BUSY               server at admission capacity; retry later
  5  DEADLINE_EXCEEDED  the request's deadline elapsed
  6  NOT_FOUND          fingerprint not resident (LOAD it again)
  7  SHUTTING_DOWN      server is draining
  8  degraded           health: reachable but draining / unhealthy /
                        queue at capacity (vs 3 = unreachable)
)";

/// The scriptable exit-code contract: transient, retryable conditions
/// get their own codes so shell callers can branch without parsing
/// stderr (documented in --help and docs/ROBUSTNESS.md).
int exit_code_for(const std::string& code) {
  if (code == "BUSY") return 4;
  if (code == "DEADLINE_EXCEEDED") return 5;
  if (code == "NOT_FOUND") return 6;
  if (code == "SHUTTING_DOWN") return 7;
  return 1;
}

svc::Client connect(const cli::Options& opt) {
  if (opt.has("socket")) return svc::Client::connect_unix(opt.get("socket"));
  if (opt.has("tcp")) {
    return svc::Client::connect_tcp(
        static_cast<int>(opt.get_int_in("tcp", 0, 1, 65535)));
  }
  throw std::invalid_argument("no server address (--socket PATH or --tcp PORT)");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Prints a response's error (if any) and maps it to an exit code.
int finish(const json::Value& response) {
  if (response.string_or("status", "") == "ok") return 0;
  const std::string code = response.string_or("code", "ERROR");
  std::cerr << "mcr_query: " << code << ": "
            << response.string_or("message", "(no message)") << "\n";
  return exit_code_for(code);
}

/// Renders a HEALTH response. `--json` keeps the raw payload for
/// scripts; the default is a human summary where the -1.0
/// last_solve_age_seconds sentinel reads as "never". Exit code 8 means
/// *degraded*: the endpoint answered, but it is draining, unhealthy,
/// or its solve queue is at capacity — distinct from 3 (unreachable)
/// so probes can branch on "restart it" vs "stop sending it traffic".
int do_health(const json::Value& r, const std::string& raw, bool as_json) {
  const bool healthy = r.has("healthy") && r.at("healthy").as_bool();
  const bool draining = r.has("draining") && r.at("draining").as_bool();
  const double depth = r.number_or("queue_depth", 0.0);
  const double capacity = r.number_or("queue_capacity", 0.0);
  const bool saturated = capacity > 0.0 && depth >= capacity;
  const bool degraded = !healthy || draining || saturated;
  if (as_json) {
    std::cout << raw << "\n";
    return degraded ? 8 : 0;
  }
  std::ostringstream out;
  out << (degraded ? "degraded" : "healthy");
  if (!healthy) out << " (healthy=false)";
  if (draining) out << " (draining)";
  if (saturated) out << " (queue at capacity)";
  out << "\n";
  if (r.has("service")) out << "  service:    " << r.at("service").as_string() << "\n";
  if (r.has("backends_total")) {
    // Router-tier HEALTH: fleet shape instead of a solve queue.
    out << "  backends:   " << r.number_or("backends_up", 0.0) << "/"
        << r.at("backends_total").as_double() << " up";
    if (const double d = r.number_or("backends_draining", 0.0); d > 0.0) {
      out << ", " << d << " draining";
    }
    out << "\n";
  }
  if (r.has("queue_depth")) {
    out << "  queue:      " << depth << "/" << capacity << " (in flight "
        << r.number_or("in_flight", 0.0) << ")\n";
  }
  if (r.has("connections")) {
    out << "  clients:    " << r.at("connections").as_double() << "\n";
  }
  if (r.has("uptime_seconds")) {
    out << "  uptime:     " << std::fixed << std::setprecision(1)
        << r.at("uptime_seconds").as_double() << "s\n";
  }
  if (r.has("last_solve_age_seconds")) {
    const double age = r.at("last_solve_age_seconds").as_double();
    out << "  last solve: ";
    if (age < 0.0) {
      out << "never\n";  // the -1 sentinel: no solve since startup
    } else {
      out << std::fixed << std::setprecision(1) << age << "s ago\n";
    }
  }
  std::cout << out.str();
  return degraded ? 8 : 0;
}

int do_solve(svc::Client& client, const cli::Options& opt) {
  if (opt.positional.size() != 2) {
    throw std::invalid_argument("solve needs <file.dimacs|fp:HEX>");
  }
  const std::string& target = opt.positional[1];
  std::string fingerprint;
  if (target.rfind("fp:", 0) == 0) {
    fingerprint = target.substr(3);
  } else {
    fingerprint = client.load_dimacs_text(read_file(target));
  }
  const bool ratio = opt.has("ratio");
  const std::string objective = std::string(opt.has("max") ? "max" : "min") + "_" +
                                (ratio ? "ratio" : "mean");
  std::string payload = R"({"verb":"SOLVE","fingerprint":")" + fingerprint +
                        R"(","objective":")" + objective + "\"";
  if (opt.has("algo")) {
    payload += R"(,"algo":")" + svc::json_escape(opt.get("algo")) + "\"";
  }
  if (const double deadline = opt.get_double("deadline-ms", 0.0); deadline > 0.0) {
    payload += ",\"deadline_ms\":" + std::to_string(deadline);
  }
  payload += "}";

  std::string raw;
  if (opt.has("retry")) {
    // request_retry throws typed errors; main maps them to exit codes.
    // The parsed value is discarded here because the json printer below
    // wants the exact response bytes.
    (void)client.request_retry(payload);
    raw = client.request_raw(payload);  // cache hit: instant, byte-stable
  } else {
    raw = client.request_raw(payload);
  }
  const json::Value r = json::parse(raw);
  if (const int rc = finish(r); rc != 0) return rc;

  const json::Value& result = r.at("result");
  const bool cached = r.at("cached").as_bool();
  std::cerr << (cached ? "(cached)" : "(solved)") << " trace_id="
            << r.string_or("trace_id", "?") << "\n";
  if (opt.get("output") == "json") {
    // The response embeds the shared result schema as its final field;
    // print exactly those bytes so responses for the same cache key are
    // byte-identical regardless of which client asked first.
    const std::size_t pos = raw.find("\"result\":");
    if (pos == std::string::npos || raw.back() != '}') {
      std::cerr << "mcr_query: malformed response\n";
      return 3;
    }
    const std::size_t begin = pos + 9;
    std::cout << raw.substr(begin, raw.size() - 1 - begin) << "\n";
    return 0;
  }
  if (!result.at("has_cycle").as_bool()) {
    std::cout << "graph is acyclic (no cycle " << (ratio ? "ratio" : "mean")
              << ")\n";
    return 0;
  }
  std::cout << result.at("algorithm").as_string() << ": " << objective << " = "
            << static_cast<std::int64_t>(result.at("value_num").as_double()) << "/"
            << static_cast<std::int64_t>(result.at("value_den").as_double()) << " ("
            << result.at("value").as_double() << "), cycle length "
            << static_cast<std::int64_t>(result.at("cycle_length").as_double())
            << ", " << result.at("milliseconds").as_double() << " ms\n";
  return 0;
}

/// One histogram's cumulative buckets, decoded from the stats JSON.
struct BucketSet {
  std::vector<double> bounds;           // finite upper bounds, seconds
  std::vector<std::uint64_t> cumulative;  // same length + 1 (+Inf last)
  std::vector<std::string> exemplars;     // per bucket; "" = none
  std::uint64_t total = 0;
};

BucketSet decode_buckets(const json::Value& hist) {
  BucketSet bs;
  for (const json::Value& b : hist.at("buckets").as_array()) {
    const json::Value& le = b.at("le");
    if (le.is_number()) bs.bounds.push_back(le.as_double());
    bs.cumulative.push_back(
        static_cast<std::uint64_t>(b.at("count").as_double()));
    bs.exemplars.push_back(
        b.has("exemplar") ? b.at("exemplar").string_or("label", "") : "");
  }
  bs.total = static_cast<std::uint64_t>(hist.at("count").as_double());
  return bs;
}

/// Quantile over a decoded bucket set, via the shared guarded
/// interpolation (obs::histogram_quantile): nullopt — printed as "-" —
/// for an empty histogram or one with no finite bounds, instead of a
/// NaN or a fabricated 0.
std::optional<double> bucket_quantile(const BucketSet& bs, double q) {
  return obs::histogram_quantile(bs.bounds, bs.cumulative, bs.total, q);
}

/// The exemplar nearest the q-th-quantile bucket (searching upward
/// first — the slow outlier is what you want a trace of).
std::string quantile_exemplar(const BucketSet& bs, double q) {
  if (bs.total == 0) return "";
  const double rank = q * static_cast<double>(bs.total);
  std::size_t at = bs.cumulative.empty() ? 0 : bs.cumulative.size() - 1;
  for (std::size_t i = 0; i < bs.cumulative.size(); ++i) {
    if (static_cast<double>(bs.cumulative[i]) >= rank) {
      at = i;
      break;
    }
  }
  for (std::size_t i = at; i < bs.exemplars.size(); ++i) {
    if (!bs.exemplars[i].empty()) return bs.exemplars[i];
  }
  for (std::size_t i = at; i-- > 0;) {
    if (!bs.exemplars[i].empty()) return bs.exemplars[i];
  }
  return "";
}

std::string fmt_ms(double seconds) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(seconds * 1000.0 < 10.0 ? 3 : 1);
  os << seconds * 1000.0;
  return os.str();
}

/// "-" when the quantile is undefined (empty family).
std::string fmt_ms_opt(const std::optional<double>& seconds) {
  return seconds.has_value() ? fmt_ms(*seconds) : "-";
}

/// A windowed percentile field ("p50_ms" etc): already in ms, null when
/// the verb has no observations in the window.
std::string fmt_window_ms(const json::Value& row, const std::string& key) {
  if (!row.has(key) || !row.at(key).is_number()) return "-";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  const double ms = row.at(key).as_double();
  os.precision(ms < 10.0 ? 3 : 1);
  os << ms;
  return os.str();
}

/// Human stats view: one latency row per verb (plus the aggregate),
/// quantiles interpolated from the mcr_request_seconds histograms.
int print_stats_table(const json::Value& r) {
  const json::Value& hists = r.at("metrics").at("histograms");
  const std::string base = "mcr_request_seconds";
  struct Row {
    std::string label;
    BucketSet buckets;
  };
  std::vector<Row> rows;
  for (const auto& [name, hist] : hists.as_object()) {
    if (name == base) {
      rows.push_back({"(all)", decode_buckets(hist)});
    } else if (name.rfind(base + "{verb=\"", 0) == 0) {
      std::string verb = name.substr(base.size() + 7);
      if (const auto quote = verb.find('"'); quote != std::string::npos) {
        verb.resize(quote);
      }
      rows.push_back({verb, decode_buckets(hist)});
    }
  }
  if (rows.empty()) {
    std::cout << "no request latency data yet (mcr_request_seconds is empty); "
                 "--json for raw metrics\n";
    return 0;
  }
  std::cout << "request latency (ms, interpolated from histogram buckets)\n";
  std::cout << "  verb       count      p50      p95      p99  p99 trace\n";
  for (const Row& row : rows) {
    const std::string p99_trace = quantile_exemplar(row.buckets, 0.99);
    std::ostringstream line;
    line << "  " << row.label;
    for (std::size_t pad = row.label.size(); pad < 8; ++pad) line << ' ';
    line.setf(std::ios::right);
    line << std::setw(9) << row.buckets.total;
    for (const double q : {0.50, 0.95, 0.99}) {
      line << std::setw(9) << fmt_ms_opt(bucket_quantile(row.buckets, q));
    }
    line << "  " << (p99_trace.empty() ? "-" : p99_trace);
    std::cout << line.str() << "\n";
  }
  const json::Value& gauges = r.at("metrics").at("gauges");
  const double resident = gauges.number_or("mcr_graphs_resident", 0.0);
  const double builder_b =
      gauges.number_or("mcr_graph_bytes{backing=\"builder\"}", 0.0);
  const double mmap_b = gauges.number_or("mcr_graph_bytes{backing=\"mmap\"}", 0.0);
  std::ostringstream mem;
  mem.setf(std::ios::fixed);
  mem.precision(1);
  mem << "resident graphs: " << static_cast<std::int64_t>(resident) << " ("
      << builder_b / (1024.0 * 1024.0) << " MiB builder, " << mmap_b / (1024.0 * 1024.0)
      << " MiB mmap)";
  std::cout << mem.str() << "\n";
  std::cout << "(fetch a trace: mcr_query ... trace --trace-id ID; "
               "--json for raw metrics)\n";
  return 0;
}

/// `top` — refreshing live view over STATS {"window":true}: windowed
/// per-verb p50/p95/p99 and rps, saturation gauges, and the cache hit
/// ratio over the refresh interval. Clears the screen only on a tty, so
/// piped output (and the e2e tests) get plain appended frames.
int do_top(svc::Client& client, const cli::Options& opt) {
  const double interval_s = opt.get_double("interval", 2.0);
  if (interval_s <= 0.0) {
    std::cerr << "mcr_query: top --interval must be positive\n";
    return 2;
  }
  const std::int64_t frames = opt.get_int_in("count", 0, 0, 1 << 30);
  const bool tty = ::isatty(STDOUT_FILENO) == 1;
  std::uint64_t prev_hits = 0;
  std::uint64_t prev_misses = 0;
  bool have_prev = false;
  for (std::int64_t frame = 0; frames == 0 || frame < frames; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    }
    const json::Value r = client.stats(/*window=*/true);
    if (const int rc = finish(r); rc != 0) return rc;
    const json::Value& window = r.at("window");
    const json::Value& metrics = r.at("metrics");
    const json::Value& gauges = metrics.at("gauges");
    const json::Value& counters = metrics.at("counters");
    const auto gauge = [&](const char* name) {
      return static_cast<std::int64_t>(gauges.number_or(name, 0.0));
    };
    const auto hits = static_cast<std::uint64_t>(
        counters.number_or("mcr_cache_hits_total", 0.0));
    const auto misses = static_cast<std::uint64_t>(
        counters.number_or("mcr_cache_misses_total", 0.0));
    const std::uint64_t dh = have_prev ? hits - prev_hits : hits;
    const std::uint64_t dm = have_prev ? misses - prev_misses : misses;
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(1);
    out << "mcr top — uptime " << r.number_or("uptime_seconds", 0.0)
        << " s, window " << window.number_or("window_seconds", 0.0)
        << " s (covered " << window.number_or("covered_seconds", 0.0)
        << " s)\n";
    out << "  queue " << gauge("mcr_queue_depth") << " (hwm "
        << gauge("mcr_queue_depth_highwater") << ")  in-flight "
        << gauge("mcr_in_flight") << "  connections "
        << gauge("mcr_active_connections") << "  batch "
        << gauge("mcr_batch_occupancy") << "%\n";
    out << "  graphs " << gauge("mcr_graphs_resident") << " ("
        << gauges.number_or("mcr_graph_bytes{backing=\"builder\"}", 0.0) /
               (1024.0 * 1024.0)
        << " MiB builder, "
        << gauges.number_or("mcr_graph_bytes{backing=\"mmap\"}", 0.0) /
               (1024.0 * 1024.0)
        << " MiB mmap)";
    if (const std::int64_t gen = gauge("mcr_dataset_generation"); gen > 0) {
      out << "  dataset generation " << gen;
    }
    out << "\n";
    out << "  cache hit ratio: ";
    if (dh + dm == 0) {
      out << "-";
    } else {
      out << 100.0 * static_cast<double>(dh) / static_cast<double>(dh + dm)
          << "%";
    }
    out << (have_prev ? " (interval)\n" : " (lifetime)\n");
    out << "\n  verb       count      rps      p50      p95      p99\n";
    for (const auto& [verb, row] : window.at("verbs").as_object()) {
      out << "  " << verb;
      for (std::size_t pad = verb.size(); pad < 8; ++pad) out << ' ';
      out << std::setw(9)
          << static_cast<std::int64_t>(row.number_or("count", 0.0))
          << std::setw(9) << row.number_or("rps", 0.0);
      out.unsetf(std::ios::fixed);
      for (const char* key : {"p50_ms", "p95_ms", "p99_ms"}) {
        out << std::setw(9) << fmt_window_ms(row, key);
      }
      out.setf(std::ios::fixed);
      out << "\n";
    }
    if (tty) std::cout << "\033[H\033[2J";
    std::cout << out.str() << std::flush;
    prev_hits = hits;
    prev_misses = misses;
    have_prev = true;
  }
  return 0;
}

int do_trace(svc::Client& client, const cli::Options& opt) {
  std::string payload = R"({"verb":"TRACE")";
  if (opt.has("trace-id")) {
    payload += R"(,"id":")" + svc::json_escape(opt.get("trace-id")) + "\"";
  }
  if (opt.has("verb")) {
    payload += R"(,"match_verb":")" + svc::json_escape(opt.get("verb")) + "\"";
  }
  if (const double min_ms = opt.get_double("min-ms", -1.0); min_ms >= 0.0) {
    payload += ",\"min_ms\":" + std::to_string(min_ms);
  }
  payload += ",\"limit\":" + std::to_string(opt.get_int_in("limit", 32, 0, 1 << 20));
  payload += "}";
  const std::string raw = client.request_raw(payload);
  const json::Value r = json::parse(raw);
  if (const int rc = finish(r); rc != 0) return rc;
  // chrome_trace is the response's final field; cut its exact bytes.
  const std::size_t pos = raw.find("\"chrome_trace\":");
  if (pos == std::string::npos || raw.back() != '}') {
    std::cerr << "mcr_query: malformed TRACE response\n";
    return 3;
  }
  const std::size_t begin = pos + 15;
  const std::string chrome = raw.substr(begin, raw.size() - 1 - begin);
  std::cerr << "traces matched: "
            << static_cast<std::int64_t>(r.number_or("count", 0)) << " (ring "
            << static_cast<std::int64_t>(r.number_or("ring_size", 0))
            << ", pinned "
            << static_cast<std::int64_t>(r.number_or("pinned_size", 0))
            << ", finished "
            << static_cast<std::int64_t>(r.number_or("finished_total", 0))
            << ", evicted "
            << static_cast<std::int64_t>(r.number_or("evicted_total", 0))
            << ")\n";
  if (opt.has("out")) {
    std::ofstream out(opt.get("out"));
    if (!out) {
      std::cerr << "mcr_query: cannot write " << opt.get("out") << "\n";
      return 2;
    }
    out << chrome << "\n";
    std::cerr << "wrote " << opt.get("out") << "\n";
  } else {
    std::cout << chrome << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  cli::Options opt;
  try {
    opt = cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << obs::version_string("mcr_query");
      return 0;
    }
    if (opt.has("help")) {
      std::cout << kHelpText;
      return 0;
    }
    if (opt.positional.empty()) {
      std::cerr << "usage: mcr_query --socket PATH|--tcp PORT "
                   "<ping|load|solve|solvers|stats|top|health|reload|trace|raw> "
                   "[args] (--help for the exit-code table)\n";
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << "mcr_query: " << e.what() << "\n";
    return 2;
  }
  try {
    svc::Client client = connect(opt);
    if (opt.has("retry")) {
      client.set_retry_policy(svc::RetryPolicy{});
    }
    const std::string& verb = opt.positional[0];
    // Sticky trace id for request verbs; the `trace` verb reuses the
    // same flag as its *filter*, so leave the client unset there.
    if (opt.has("trace-id") && verb != "trace") {
      client.set_trace_id(opt.get("trace-id"));
    }
    if (verb == "trace") return do_trace(client, opt);
    if (verb == "health") {
      const std::string raw = client.request_raw(R"({"verb":"HEALTH"})");
      const json::Value r = json::parse(raw);
      if (const int rc = finish(r); rc != 0) return rc;
      return do_health(r, raw, opt.has("json"));
    }
    if (verb == "ping") {
      if (!client.ping()) {
        std::cerr << "mcr_query: ping failed\n";
        return 1;
      }
      std::cout << "ok\n";
      return 0;
    }
    if (verb == "load") {
      if (opt.positional.size() != 2) {
        std::cerr << "mcr_query: load needs <file.dimacs>\n";
        return 2;
      }
      const json::Value r = client.request(
          R"({"verb":"LOAD","dimacs":")" +
          svc::json_escape(read_file(opt.positional[1])) + "\"}");
      if (const int rc = finish(r); rc != 0) return rc;
      std::cout << r.at("fingerprint").as_string() << "\n";
      return 0;
    }
    if (verb == "solve") return do_solve(client, opt);
    if (verb == "solvers") {
      const json::Value r = client.request(R"({"verb":"SOLVERS"})");
      if (const int rc = finish(r); rc != 0) return rc;
      for (const json::Value& s : r.at("solvers").as_array()) {
        std::cout << s.at("name").as_string() << "  ("
                  << s.at("kind").as_string() << ", "
                  << s.at("bound").as_string() << ")\n";
      }
      return 0;
    }
    if (verb == "stats") {
      const std::string raw = client.request_raw(R"({"verb":"STATS"})");
      const json::Value r = json::parse(raw);
      if (const int rc = finish(r); rc != 0) return rc;
      if (opt.has("prometheus")) {
        std::cout << r.at("prometheus").as_string();
        return 0;
      }
      if (opt.has("json")) {
        std::cout << raw << "\n";
        return 0;
      }
      return print_stats_table(r);
    }
    if (verb == "top") return do_top(client, opt);
    if (verb == "reload") {
      const json::Value r = client.reload(opt.get("path"));
      if (const int rc = finish(r); rc != 0) return rc;
      std::cout << r.at("fingerprint").as_string() << "\n";
      std::cerr << "reloaded " << r.string_or("path", "?") << " (generation "
                << static_cast<std::int64_t>(r.number_or("generation", 0)) << ", "
                << static_cast<std::int64_t>(r.number_or("nodes", 0)) << " nodes, "
                << static_cast<std::int64_t>(r.number_or("arcs", 0)) << " arcs)\n";
      return 0;
    }
    if (verb == "raw") {
      if (opt.positional.size() != 2) {
        std::cerr << "mcr_query: raw needs one JSON payload argument\n";
        return 2;
      }
      std::cout << client.request_raw(opt.positional[1]) << "\n";
      return 0;
    }
    std::cerr << "mcr_query: unknown verb '" << verb << "'\n";
    return 2;
  } catch (const svc::ServiceError& e) {
    // Typed server error thrown by the retry path after its budget ran
    // out (or immediately for non-retryable codes).
    std::cerr << "mcr_query: " << e.what() << "\n";
    return exit_code_for(e.code());
  } catch (const std::invalid_argument& e) {
    std::cerr << "mcr_query: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mcr_query: " << e.what() << "\n";
    return 3;
  }
}
