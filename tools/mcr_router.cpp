// mcr_router — fault-tolerant front-end for a fleet of mcr_serve
// workers (docs/FLEET.md).
//
//   mcr_router --socket /tmp/router.sock [--listen [HOST:]PORT]
//              --worker unix:/tmp/w1.sock --worker 127.0.0.1:9301 ...
//              [--replicas R] [--vnodes N] [--attempts N]
//              [--probe-interval-ms MS] [--pool N] [--max-frame BYTES]
//              [--breaker-failures N] [--breaker-cooldown-ms MS]
//              [--breaker-cooldown-max-ms MS]
//              [--window SECONDS] [--window-slots N]
//
//   --socket PATH       Unix-domain listener for clients
//   --listen [HOST:]PORT  TCP listener (0 = ephemeral, printed; HOST
//                       defaults to 127.0.0.1)
//   --worker SPEC       one backend: unix:PATH, HOST:PORT, or PORT
//                       (repeatable; at least one required)
//   --replicas R        replication factor: each graph fingerprint maps
//                       to R distinct workers (default 2)
//   --vnodes N          virtual nodes per worker on the hash ring
//   --attempts N        failover budget: max forward attempts per
//                       request across replicas (default 3)
//   --probe-interval-ms MS  active HEALTH probe period, jittered
//                       +/-25% (default 500; 0 disables probing)
//   --pool N            idle upstream connections kept per backend
//   --max-frame B       reject frames larger than B bytes
//   --breaker-failures N     consecutive failures that open a breaker
//   --breaker-cooldown-ms MS initial open cooldown (doubles, jittered)
//   --breaker-cooldown-max-ms MS  cooldown cap
//   --window S / --window-slots N  windowed per-backend latency shape
//   --version           print build provenance and exit
//
// Clients speak the ordinary MCR1 protocol to the router. SOLVE/LOAD
// requests shard by graph fingerprint with consistent hashing; LOAD
// fans out to all R replicas; STATS/HEALTH are answered by the router
// itself (STATS {"fanout":true} embeds every worker's STATS); RELOAD
// fans out once to every healthy worker, never retried. Idempotent
// verbs fail over to the next replica on BUSY / SHUTTING_DOWN / clean
// transport errors — never after partial response bytes.
//
// SIGTERM / SIGINT drain gracefully: stop accepting, finish in-flight
// client requests, exit 0.
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cli.h"
#include "obs/build_info.h"
#include "svc/router.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe[1], "x", 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  try {
    const cli::Options opt = cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << obs::version_string("mcr_router");
      return 0;
    }
    const std::vector<std::string> worker_specs = opt.get_all("worker");
    if (!opt.positional.empty() || worker_specs.empty() ||
        (!opt.has("socket") && !opt.has("listen"))) {
      std::cerr
          << "usage: mcr_router --socket PATH [--listen [HOST:]PORT]\n"
             "                  --worker SPEC [--worker SPEC ...]\n"
             "                  [--replicas R] [--vnodes N] [--attempts N]\n"
             "                  [--probe-interval-ms MS] [--pool N]\n"
             "                  [--max-frame BYTES] [--breaker-failures N]\n"
             "                  [--breaker-cooldown-ms MS]\n"
             "                  [--breaker-cooldown-max-ms MS]\n"
             "                  [--window SECONDS] [--window-slots N] [--version]\n"
             "       SPEC is unix:PATH, HOST:PORT, or PORT\n";
      return 2;
    }

    svc::RouterOptions ro;
    ro.unix_socket_path = opt.get("socket");
    if (opt.has("listen")) {
      const svc::BackendAddress listen =
          svc::parse_backend_address(opt.get("listen"), /*allow_port_zero=*/true);
      if (listen.kind != svc::BackendAddress::Kind::kTcp) {
        std::cerr << "mcr_router: --listen expects [HOST:]PORT\n";
        return 2;
      }
      ro.tcp_bind_host = listen.host;
      ro.tcp_port = listen.port;
    }
    for (const std::string& spec : worker_specs) {
      ro.workers.push_back(svc::parse_backend_address(spec));
    }
    ro.replicas = static_cast<std::size_t>(opt.get_int_in("replicas", 2, 1, 64));
    ro.virtual_nodes = static_cast<std::size_t>(opt.get_int_in("vnodes", 64, 1, 4096));
    ro.max_attempts = static_cast<int>(opt.get_int_in("attempts", 3, 1, 64));
    ro.probe_interval_ms = opt.get_double("probe-interval-ms", 500.0);
    ro.pool_capacity = static_cast<std::size_t>(opt.get_int_in("pool", 8, 0, 4096));
    ro.max_frame_bytes = static_cast<std::size_t>(opt.get_int_in(
        "max-frame", static_cast<std::int64_t>(svc::kDefaultMaxFrameBytes), 1024,
        1 << 30));
    ro.breaker.failure_threshold =
        static_cast<int>(opt.get_int_in("breaker-failures", 3, 1, 1000));
    ro.breaker.cooldown_initial_ms = opt.get_double("breaker-cooldown-ms", 250.0);
    ro.breaker.cooldown_max_ms = opt.get_double("breaker-cooldown-max-ms", 5000.0);
    ro.stats_window_s = opt.get_double("window", 60.0);
    ro.stats_window_slots =
        static_cast<std::size_t>(opt.get_int_in("window-slots", 6, 2, 600));
    if (ro.stats_window_s <= 0.0) {
      std::cerr << "mcr_router: --window must be positive\n";
      return 2;
    }
    if (ro.breaker.cooldown_initial_ms <= 0.0 ||
        ro.breaker.cooldown_max_ms < ro.breaker.cooldown_initial_ms) {
      std::cerr << "mcr_router: breaker cooldowns must satisfy "
                   "0 < initial <= max\n";
      return 2;
    }

    // Handlers go in BEFORE start(): a supervisor restarting quickly can
    // deliver SIGTERM during startup, and the default action would skip
    // stop_and_drain() (dropping in-flight work, orphaning the socket
    // file). With the pipe armed first, an early signal simply makes the
    // wait loop below return immediately and the drain path still runs.
    if (::pipe(g_signal_pipe) != 0) {
      std::cerr << "mcr_router: cannot create signal pipe\n";
      return 1;
    }
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    svc::Router router(std::move(ro));
    router.start();
    // Read back the (possibly moved-from) config via the router itself.
    if (opt.has("socket")) {
      std::cout << "mcr_router: listening on unix:" << opt.get("socket") << "\n";
    }
    if (router.tcp_port() >= 0) {
      std::cout << "mcr_router: listening on tcp port " << router.tcp_port() << "\n";
    }
    for (const std::string& spec : worker_specs) {
      std::cout << "mcr_router: worker " << spec << "\n";
    }
    std::cout << "mcr_router: ready (" << worker_specs.size() << " workers, replicas "
              << opt.get_int("replicas", 2) << ", attempts "
              << opt.get_int("attempts", 3) << ")" << std::endl;

    for (;;) {
      char byte = 0;
      const ssize_t got = ::read(g_signal_pipe[0], &byte, 1);
      if (got < 0) continue;  // EINTR
      break;
    }
    std::cout << "mcr_router: signal received, draining" << std::endl;
    router.stop_and_drain();
    std::cout << "mcr_router: drained, exiting" << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mcr_router: " << e.what() << "\n";
    return 1;
  }
}
