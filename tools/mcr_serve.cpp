// mcr_serve — the resident solve service daemon.
//
//   mcr_serve --socket /tmp/mcr.sock [--listen PORT] [--threads N]
//             [--tile-arcs N] [--queue K] [--batch N] [--cache N]
//             [--graphs N] [--max-frame BYTES] [--preload FILE]...
//             [--trace FILE]
//
//   --socket PATH    Unix-domain listener (the normal deployment)
//   --listen PORT    additional TCP listener on 127.0.0.1:PORT
//                    (0 = ephemeral; the bound port is printed)
//   --threads N      worker threads per dispatched solve (0 = hardware)
//   --tile-arcs N    arc-tile granularity for intra-SCC parallelism in
//                    dispatched solves (0 = untiled; bit-identical
//                    results for any value)
//   --queue K        admission bound: at most K solves admitted and
//                    unfinished; beyond that SOLVE answers BUSY
//   --batch N        max requests coalesced into one dispatch batch
//   --cache N        LRU result-cache entries
//   --graphs N       LRU resident-graph entries
//   --max-frame B    reject request frames larger than B bytes
//   --preload FILE   load a DIMACS file into the registry at startup
//                    (repeatable via comma-separated list)
//   --trace FILE     write a Chrome/Perfetto trace on exit
//   --version        print build provenance and exit
//
// SIGTERM / SIGINT drain gracefully: stop accepting, finish every
// in-flight request, then exit 0. Protocol reference: docs/SERVICE.md.
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cli.h"
#include "obs/build_info.h"
#include "obs/trace_recorder.h"
#include "svc/server.h"

namespace {

// Self-pipe: the handler only writes one byte; the main thread blocks
// on the read end and runs the (non-async-signal-safe) drain.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe[1], "x", 1);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  try {
    const cli::Options opt = cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << obs::version_string("mcr_serve");
      return 0;
    }
    if (!opt.positional.empty() || (!opt.has("socket") && !opt.has("listen"))) {
      std::cerr << "usage: mcr_serve --socket PATH [--listen PORT] [--threads N]\n"
                   "                 [--tile-arcs N] [--queue K] [--batch N]\n"
                   "                 [--cache N] [--graphs N]\n"
                   "                 [--max-frame BYTES] [--preload FILE[,FILE...]]\n"
                   "                 [--trace FILE] [--version]\n";
      return 2;
    }

    obs::TraceRecorder recorder;
    svc::ServerOptions so;
    so.unix_socket_path = opt.get("socket");
    so.tcp_port = opt.has("listen")
                      ? static_cast<int>(opt.get_int_in("listen", 0, 0, 65535))
                      : -1;
    so.solve_threads = static_cast<int>(opt.get_int_in("threads", 0, 0, 4096));
    so.solve_tile_arcs =
        static_cast<std::int32_t>(opt.get_int_in("tile-arcs", 0, 0, 1 << 30));
    so.queue_capacity =
        static_cast<std::size_t>(opt.get_int_in("queue", 64, 1, 1 << 20));
    so.batch_max = static_cast<std::size_t>(opt.get_int_in("batch", 32, 1, 4096));
    so.cache_entries =
        static_cast<std::size_t>(opt.get_int_in("cache", 1024, 1, 1 << 24));
    so.graph_entries =
        static_cast<std::size_t>(opt.get_int_in("graphs", 64, 1, 1 << 20));
    so.max_frame_bytes = static_cast<std::size_t>(opt.get_int_in(
        "max-frame", static_cast<std::int64_t>(svc::kDefaultMaxFrameBytes), 1024,
        1 << 30));
    if (opt.has("trace")) so.trace = &recorder;

    svc::Server server(so);
    for (const std::string& file : split_csv(opt.get("preload"))) {
      std::cout << "preload: " << file << " -> " << server.preload_dimacs_file(file)
                << "\n";
    }
    server.start();
    if (!so.unix_socket_path.empty()) {
      std::cout << "mcr_serve: listening on unix:" << so.unix_socket_path << "\n";
    }
    if (so.tcp_port >= 0) {
      std::cout << "mcr_serve: listening on tcp:127.0.0.1:" << server.tcp_port()
                << "\n";
    }
    std::cout << "mcr_serve: ready (queue " << so.queue_capacity << ", cache "
              << so.cache_entries << " entries, batch <= " << so.batch_max << ")"
              << std::endl;

    if (::pipe(g_signal_pipe) != 0) {
      std::cerr << "mcr_serve: cannot create signal pipe\n";
      return 1;
    }
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0) {
      // EINTR: the signal itself interrupts the read; retry and pick up
      // the byte the handler wrote.
    }

    std::cout << "mcr_serve: signal received, draining" << std::endl;
    server.stop_and_drain();
    if (opt.has("trace")) {
      std::ofstream out(opt.get("trace"));
      if (out) recorder.write_chrome_trace(out);
    }
    std::cout << "mcr_serve: drained, exiting" << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mcr_serve: " << e.what() << "\n";
    return 1;
  }
}
