// mcr_serve — the resident solve service daemon.
//
//   mcr_serve --socket /tmp/mcr.sock [--listen [HOST:]PORT] [--threads N]
//             [--tile-arcs N] [--queue K] [--batch N] [--cache N]
//             [--graphs N] [--max-frame BYTES] [--preload FILE]...
//             [--dataset FILE.mcrpack]
//             [--trace FILE] [--slow-ms MS] [--trace-sample P]
//             [--flight N] [--flight-pinned N] [--flight-dump PATH]
//             [--log-json PATH] [--window SECONDS] [--window-slots N]
//             [--stats-interval SECONDS] [--stats-out PATH]
//
//   --socket PATH    Unix-domain listener (the normal deployment)
//   --listen [HOST:]PORT  additional TCP listener; HOST defaults to
//                    127.0.0.1 (use 0.0.0.0 to sit behind an mcr_router
//                    on another host). PORT 0 = ephemeral; the bound
//                    port is printed
//   --threads N      worker threads per dispatched solve (0 = hardware)
//   --tile-arcs N    arc-tile granularity for intra-SCC parallelism in
//                    dispatched solves (0 = untiled; bit-identical
//                    results for any value)
//   --queue K        admission bound: at most K solves admitted and
//                    unfinished; beyond that SOLVE answers BUSY
//   --batch N        max requests coalesced into one dispatch batch
//   --cache N        LRU result-cache entries
//   --graphs N       LRU resident-graph entries
//   --max-frame B    reject request frames larger than B bytes
//   --preload FILE   load a DIMACS file into the registry at startup
//                    (repeatable via comma-separated list)
//   --dataset FILE   attach a .mcrpack dataset at startup (mmap'd
//                    zero-copy; the RELOAD verb or SIGHUP hot-swaps to
//                    a new generation without dropping requests — see
//                    docs/STORAGE.md)
//   --trace FILE     write a Chrome/Perfetto trace on exit
//   --slow-ms MS     pin request traces at least this slow (0 pins all,
//                    -1 disables slow-pinning; errors always pin)
//   --trace-sample P head-sampling probability in [0,1] for full-detail
//                    solver spans in retained request traces
//   --flight N       flight-recorder ring capacity (recent traces)
//   --flight-pinned N  pinned-trace capacity (slow/errored)
//   --flight-dump PATH post-mortem ring dump on a fatal signal
//                    ("none" disables; default mcr_flight_dump.json)
//   --log-json PATH  per-request JSONL access log (default off)
//   --window S       sliding telemetry window in seconds (default 60)
//   --window-slots N ring sub-windows per window (default 6)
//   --stats-interval S  emit one telemetry snapshot line every S seconds
//   --stats-out PATH    JSONL file for snapshot lines (pump runs only
//                    when both --stats-interval and --stats-out are set)
//   --version        print build provenance and exit
//
// The flight recorder itself is always on: the TRACE verb serves the
// recent/pinned request traces of a live daemon as Perfetto-loadable
// Chrome JSON. See docs/OBSERVABILITY.md.
//
// SIGTERM / SIGINT drain gracefully: stop accepting, finish every
// in-flight request, then exit 0. SIGHUP re-attaches the current
// --dataset path (pick up a republished pack without a restart); it is
// ignored when no dataset is attached. Protocol reference:
// docs/SERVICE.md.
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cli.h"
#include "obs/build_info.h"
#include "obs/trace_recorder.h"
#include "svc/router.h"
#include "svc/server.h"

namespace {

// Self-pipe: the handler only writes one byte; the main thread blocks
// on the read end and runs the (non-async-signal-safe) drain.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe[1], "x", 1);
}

void on_sighup(int) {
  [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe[1], "h", 1);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  try {
    const cli::Options opt = cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << obs::version_string("mcr_serve");
      return 0;
    }
    if (!opt.positional.empty() || (!opt.has("socket") && !opt.has("listen"))) {
      std::cerr << "usage: mcr_serve --socket PATH [--listen [HOST:]PORT] [--threads N]\n"
                   "                 [--tile-arcs N] [--queue K] [--batch N]\n"
                   "                 [--cache N] [--graphs N]\n"
                   "                 [--max-frame BYTES] [--preload FILE[,FILE...]]\n"
                   "                 [--dataset FILE.mcrpack]\n"
                   "                 [--trace FILE] [--slow-ms MS] [--trace-sample P]\n"
                   "                 [--flight N] [--flight-pinned N]\n"
                   "                 [--flight-dump PATH] [--log-json PATH]\n"
                   "                 [--window SECONDS] [--window-slots N]\n"
                   "                 [--stats-interval SECONDS] [--stats-out PATH]\n"
                   "                 [--version]\n";
      return 2;
    }

    obs::TraceRecorder recorder;
    svc::ServerOptions so;
    so.unix_socket_path = opt.get("socket");
    if (opt.has("listen")) {
      const svc::BackendAddress listen =
          svc::parse_backend_address(opt.get("listen"), /*allow_port_zero=*/true);
      if (listen.kind != svc::BackendAddress::Kind::kTcp) {
        std::cerr << "mcr_serve: --listen expects [HOST:]PORT\n";
        return 2;
      }
      so.tcp_bind_host = listen.host;
      so.tcp_port = listen.port;
    }
    so.solve_threads = static_cast<int>(opt.get_int_in("threads", 0, 0, 4096));
    so.solve_tile_arcs =
        static_cast<std::int32_t>(opt.get_int_in("tile-arcs", 0, 0, 1 << 30));
    so.queue_capacity =
        static_cast<std::size_t>(opt.get_int_in("queue", 64, 1, 1 << 20));
    so.batch_max = static_cast<std::size_t>(opt.get_int_in("batch", 32, 1, 4096));
    so.cache_entries =
        static_cast<std::size_t>(opt.get_int_in("cache", 1024, 1, 1 << 24));
    so.graph_entries =
        static_cast<std::size_t>(opt.get_int_in("graphs", 64, 1, 1 << 20));
    so.max_frame_bytes = static_cast<std::size_t>(opt.get_int_in(
        "max-frame", static_cast<std::int64_t>(svc::kDefaultMaxFrameBytes), 1024,
        1 << 30));
    if (opt.has("trace")) so.trace = &recorder;
    so.flight.capacity =
        static_cast<std::size_t>(opt.get_int_in("flight", 256, 1, 1 << 20));
    so.flight.pinned_capacity =
        static_cast<std::size_t>(opt.get_int_in("flight-pinned", 64, 1, 1 << 20));
    so.flight.slow_ms = opt.get_double("slow-ms", 250.0);
    so.flight.sample_rate = opt.get_double("trace-sample", 0.0);
    if (so.flight.sample_rate < 0.0 || so.flight.sample_rate > 1.0) {
      std::cerr << "mcr_serve: --trace-sample must be in [0,1]\n";
      return 2;
    }
    so.request_log_path = opt.get("log-json");
    so.stats_window_s = opt.get_double("window", 60.0);
    so.stats_window_slots =
        static_cast<std::size_t>(opt.get_int_in("window-slots", 6, 2, 600));
    so.stats_interval_s = opt.get_double("stats-interval", 0.0);
    so.stats_out_path = opt.get("stats-out");
    so.dataset_path = opt.get("dataset");
    if (so.stats_window_s <= 0.0) {
      std::cerr << "mcr_serve: --window must be positive\n";
      return 2;
    }

    svc::Server server(so);
    const std::string dump_path = opt.get("flight-dump", "mcr_flight_dump.json");
    if (dump_path != "none") {
      obs::install_fatal_dump(&server.flight(), dump_path);
    }
    for (const std::string& file : split_csv(opt.get("preload"))) {
      std::cout << "preload: " << file << " -> " << server.preload_dimacs_file(file)
                << "\n";
    }
    server.start();
    if (const auto ds = server.dataset(); ds != nullptr) {
      std::cout << "dataset: " << ds->path << " -> " << ds->fingerprint
                << " (generation " << ds->generation << ", " << ds->graph->num_nodes()
                << " nodes, " << ds->graph->num_arcs() << " arcs)\n";
    }
    if (!so.unix_socket_path.empty()) {
      std::cout << "mcr_serve: listening on unix:" << so.unix_socket_path << "\n";
    }
    if (so.tcp_port >= 0) {
      std::cout << "mcr_serve: listening on tcp:" << so.tcp_bind_host << ":"
                << server.tcp_port() << "\n";
    }
    std::cout << "mcr_serve: ready (queue " << so.queue_capacity << ", cache "
              << so.cache_entries << " entries, batch <= " << so.batch_max << ")"
              << std::endl;

    if (::pipe(g_signal_pipe) != 0) {
      std::cerr << "mcr_serve: cannot create signal pipe\n";
      return 1;
    }
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGHUP, on_sighup);
    for (;;) {
      char byte = 0;
      const ssize_t got = ::read(g_signal_pipe[0], &byte, 1);
      if (got < 0) continue;  // EINTR: retry and pick up the handler's byte
      if (got == 0) break;
      if (byte != 'h') break;  // SIGTERM/SIGINT: fall through to drain
      // SIGHUP: hot-swap to the current dataset path. A bad pack (or no
      // dataset) must not take the daemon down — log and keep serving.
      try {
        const auto ds = server.reload_dataset();
        std::cout << "mcr_serve: reloaded " << ds->path << " -> " << ds->fingerprint
                  << " (generation " << ds->generation << ")" << std::endl;
      } catch (const std::exception& e) {
        std::cerr << "mcr_serve: reload failed: " << e.what() << std::endl;
      }
    }

    std::cout << "mcr_serve: signal received, draining" << std::endl;
    server.stop_and_drain();
    if (opt.has("trace")) {
      std::ofstream out(opt.get("trace"));
      if (out) recorder.write_chrome_trace(out);
    }
    std::cout << "mcr_serve: drained, exiting" << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mcr_serve: " << e.what() << "\n";
    return 1;
  }
}
