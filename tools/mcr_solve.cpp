// mcr_solve — solve an MCM/MCR instance from a DIMACS file.
//
//   mcr_solve <file.dimacs> [--algo howard] [--ratio] [--max]
//             [--verify] [--critical] [--counters] [--all] [--threads N]
//             [--tile-arcs N] [--trace FILE] [--metrics]
//             [--metrics-json FILE]
//
//   --algo NAME   registry solver (default: howard / howard_ratio)
//   --ratio       optimize w(C)/t(C) instead of w(C)/|C|
//   --max         maximize instead of minimize
//   --threads N   solve SCC subproblems on N worker threads (0 = one
//                 per hardware thread; default 1 = serial). The result
//                 is bit-identical for any N.
//   --tile-arcs N split relaxation sweeps into arc tiles of at most N
//                 CSR positions so a single giant SCC also spreads over
//                 the workers (default 0 = untiled; 4096 is a good
//                 cache-sized value). Bit-identical for any setting.
//   --verify      certify the result exactly and report
//   --critical    also print critical-subgraph statistics
//   --counters    print the solver's operation counters
//   --all         run every registered solver of the problem kind
//   --output json machine-readable result on stdout: the same schema
//                 the solve service emits (exact rational + double,
//                 witness cycle, algorithm, wall time). --json is an
//                 accepted alias.
//   --version     print build provenance and exit
//   --trace FILE  record a Chrome/Perfetto trace of the solve (phase
//                 spans + solver iteration events; open in
//                 ui.perfetto.dev). With --all, one file covers every
//                 solver's run back to back.
//   --metrics     print Prometheus-style metrics after the result
//   --metrics-json FILE   write the metrics as one JSON object
//   --list        list registered solvers and exit
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "cli.h"
#include "core/critical.h"
#include "core/driver.h"
#include "core/registry.h"
#include "core/verify.h"
#include "graph/io.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "support/stats.h"
#include "support/table.h"
#include "svc/result_json.h"

namespace {

using namespace mcr;

int solve_one(const Graph& g, const std::string& algo, bool ratio, bool max,
              const cli::Options& opt, obs::TraceSink* trace,
              obs::MetricsRegistry* metrics) {
  const auto solver = SolverRegistry::instance().create(algo);
  const SolveOptions so{
      .num_threads = static_cast<int>(opt.get_int_in("threads", 1, 0, 4096)),
      .tile_arcs =
          static_cast<std::int32_t>(opt.get_int_in("tile-arcs", 0, 0, 1 << 30)),
      .trace = trace,
      .metrics = metrics};
  Timer timer;
  const CycleResult r = max   ? (ratio ? maximum_cycle_ratio(g, *solver, so)
                                       : maximum_cycle_mean(g, *solver, so))
                        : ratio ? minimum_cycle_ratio(g, *solver, so)
                                : minimum_cycle_mean(g, *solver, so);
  const double ms = timer.millis();

  if (opt.has("json") || opt.get("output") == "json") {
    const std::string objective =
        std::string(max ? "max" : "min") + "_" + (ratio ? "ratio" : "mean");
    std::cout << svc::result_json(r, algo, objective, ms) << "\n";
    return 0;
  }
  if (!r.has_cycle) {
    std::cout << algo << ": graph is acyclic (no cycle mean/ratio)\n";
    return 0;
  }
  std::cout << algo << ": " << (max ? "maximum" : "minimum") << " cycle "
            << (ratio ? "ratio" : "mean") << " = " << r.value << " ("
            << r.value.to_double() << "), cycle length " << r.cycle.size() << ", "
            << fmt_fixed(ms, 2) << " ms\n";
  if (opt.has("counters")) {
    std::cout << "  counters: " << r.counters.summary() << "\n";
  }
  if (opt.has("verify")) {
    // The maximum variants are verified on the negated problem by the
    // library's tests; here we verify the minimum variants directly.
    if (max) {
      std::cout << "  verify: use --max with the negated instance to certify\n";
    } else {
      const auto cert =
          verify_result(g, r, ratio ? ProblemKind::kCycleRatio : ProblemKind::kCycleMean);
      std::cout << "  verify: " << (cert.ok ? "OK (exact optimum)" : cert.message)
                << "\n";
      if (!cert.ok) return 1;
    }
  }
  if (opt.has("critical") && !max) {
    const auto kind = ratio ? ProblemKind::kCycleRatio : ProblemKind::kCycleMean;
    const CriticalSubgraph crit = critical_subgraph(g, r.value, kind);
    const auto optimal = optimal_arc_set(g, r.value, kind);
    std::cout << "  critical subgraph: " << crit.arcs.size() << " arcs / "
              << crit.nodes.size() << " nodes; " << optimal.size()
              << " arcs lie on optimum cycles\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcr;
  try {
    const cli::Options opt = cli::parse(argc, argv);
    if (opt.has("version")) {
      std::cout << obs::version_string("mcr_solve");
      return 0;
    }
    const bool ratio = opt.has("ratio");
    if (opt.has("list")) {
      const auto kind = ratio ? ProblemKind::kCycleRatio : ProblemKind::kCycleMean;
      for (const auto& name : SolverRegistry::instance().names(kind)) {
        const auto& info = SolverRegistry::instance().info(name);
        std::cout << name << "  (" << info.source << ", " << info.bound << ")\n";
      }
      return 0;
    }
    if (opt.positional.size() != 1) {
      std::cerr << "usage: mcr_solve <file.dimacs> [--algo NAME] [--ratio] [--max]\n"
                   "                 [--verify] [--critical] [--counters] [--all]\n"
                   "                 [--threads N] [--trace FILE] [--metrics]\n"
                   "                 [--metrics-json FILE] [--output json] [--list]\n"
                   "                 [--version]\n";
      return 2;
    }
    const Graph g = load_dimacs(opt.positional[0]);
    std::cout << "instance: " << g.num_nodes() << " nodes, " << g.num_arcs()
              << " arcs, weights [" << g.min_weight() << ", " << g.max_weight()
              << "], total transit " << g.total_transit() << "\n";

    obs::TraceRecorder recorder;
    obs::MetricsRegistry registry;
    const bool want_trace = opt.has("trace");
    const bool want_metrics = opt.has("metrics") || opt.has("metrics-json");
    obs::TraceSink* trace = want_trace ? &recorder : nullptr;
    obs::MetricsRegistry* metrics = want_metrics ? &registry : nullptr;
    if (want_metrics) obs::export_build_info(registry);

    const bool max = opt.has("max");
    int rc = 0;
    if (opt.has("all")) {
      const auto kind = ratio ? ProblemKind::kCycleRatio : ProblemKind::kCycleMean;
      for (const auto& name : SolverRegistry::instance().names(kind)) {
        if (name.rfind("brute_force", 0) == 0) continue;
        rc |= solve_one(g, name, ratio, max, opt, trace, metrics);
      }
    } else {
      const std::string algo = opt.get("algo", ratio ? "howard_ratio" : "howard");
      rc = solve_one(g, algo, ratio, max, opt, trace, metrics);
    }

    if (want_trace) {
      std::ofstream out(opt.get("trace"));
      if (!out) throw std::runtime_error("cannot write trace file " + opt.get("trace"));
      recorder.write_chrome_trace(out);
      std::cout << "trace: wrote " << recorder.events().size() << " events from "
                << recorder.num_threads() << " thread(s) to " << opt.get("trace")
                << " (open in ui.perfetto.dev)\n";
    }
    if (opt.has("metrics")) {
      std::cout << "metrics:\n" << registry.prometheus_text();
    }
    if (opt.has("metrics-json")) {
      std::ofstream out(opt.get("metrics-json"));
      if (!out) {
        throw std::runtime_error("cannot write metrics file " + opt.get("metrics-json"));
      }
      registry.write_json(out);
      out << "\n";
      std::cout << "metrics: wrote JSON dump to " << opt.get("metrics-json") << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "mcr_solve: " << e.what() << "\n";
    return 1;
  }
}
